"""Process replaceability (paper Section 6.1): an adversary that corrupts
committee members *as soon as their membership is revealed* gains nothing,
because a correct member broadcasts at most one message per role -- the
contribution is in flight before the corruption can land, and the kernel
forbids after-the-fact removal.
"""

from __future__ import annotations

import random

import pytest

from repro.core.agreement import byzantine_agreement
from repro.core.params import ProtocolParams
from repro.core.whp_coin import whp_coin
from repro.sim.adversary import (
    Adversary,
    CommitteeTargetingCorruption,
    RandomScheduler,
)
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 60, 4


@pytest.fixture(scope="module")
def params():
    return ProtocolParams.simulation_scale(n=N, f=F, lam=45)


def committee_hunting_adversary(seed: int) -> Adversary:
    return Adversary(
        scheduler=RandomScheduler(random.Random(seed)),
        corruption=CommitteeTargetingCorruption(),
    )


class TestWhpCoinSurvives:
    @pytest.mark.parametrize("seed", range(3))
    def test_coin_lives_and_agrees(self, params, seed):
        result = run_protocol(
            N, F, lambda ctx: whp_coin(ctx, 0),
            adversary=committee_hunting_adversary(seed), params=params, seed=seed,
        )
        assert result.live
        # The budget is fully spent on (useless) post-hoc corruptions.
        assert len(result.corrupted) == F
        assert len(result.returned_values) == 1


class TestAgreementSurvives:
    def test_ba_decides_despite_member_hunting(self, params):
        result = run_protocol(
            N, F, lambda ctx: byzantine_agreement(ctx, ctx.pid % 2),
            adversary=committee_hunting_adversary(17), params=params,
            stop_condition=stop_when_all_decided, seed=17,
        )
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestCorruptionTiming:
    def test_corrupted_members_already_spoke(self, params):
        """Every hunted process had its committee message submitted before
        corruption: the trace shows a send before the corrupt event."""
        from repro.crypto.pki import PKI
        from repro.sim.network import Simulation
        from repro.sim.trace import attach_trace

        pki = PKI.create(N, rng=random.Random(0))
        sim = Simulation(
            n=N, f=F, pki=pki, adversary=committee_hunting_adversary(5),
            seed=5, params=params,
        )
        trace = attach_trace(sim)
        sim.set_protocol_all(lambda ctx: whp_coin(ctx, 0))
        sim.run()
        corrupt_events = trace.of_kind("corrupt")
        assert corrupt_events
        for event in corrupt_events:
            first_send = trace.sends_by(event.pid)[0]
            assert first_send.step <= event.step
