"""The hot-path optimisations are pure: cached+keyed == uncached+eager.

Runs the same (protocol, scheduler, seed) cell through the optimised
kernel (verification cache on, instance-keyed wakeups honoured) and the
reference kernel (cache off, eager wakeups) and asserts every observable
RunResult field matches -- across the scheduler zoo for the shared coin,
and under random scheduling for WHP coin and full Byzantine Agreement.
This is the soundness certificate for DESIGN.md's cache/wakeup argument.
"""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.core.whp_coin import whp_coin
from repro.crypto.pki import PKI
from repro.experiments.protocols import make_runner
from repro.sim.adversary import Adversary, StaticCorruption
from repro.sim.diffing import divergence_hint
from repro.sim.runner import RunResult, run_protocol, stop_when_all_decided

from tests.integration.test_determinism_matrix import SCHEDULER_FACTORIES

N, F = 10, 2


def observable(result: RunResult) -> tuple:
    """All kernel-determined fields; cache/wakeup counters excluded
    (they legitimately differ between the two kernels)."""
    return (
        result.n,
        result.f,
        result.seed,
        result.corrupted,
        result.returns,
        result.decisions,
        result.decision_depths,
        result.notes,
        result.deliveries,
        result.deadlocked,
        result.exhausted,
        result.stopped_by_condition,
        result.words,
        result.metrics.words_total,
        result.metrics.messages_sent_correct,
        result.metrics.messages_sent_total,
        result.metrics.messages_delivered,
        result.metrics.words_by_kind,
        result.metrics.messages_by_kind,
    )


def run_shared_coin(scheduler_name: str, seed: int, fast: bool) -> RunResult:
    pki = PKI.create(N, rng=random.Random(99), verify_cache=fast)
    adversary = Adversary(
        scheduler=SCHEDULER_FACTORIES[scheduler_name](seed),
        corruption=StaticCorruption({0, 1}),
    )
    return run_protocol(
        N, F, lambda ctx: shared_coin(ctx, 0),
        adversary=adversary, pki=pki, params=ProtocolParams(n=N, f=F), seed=seed,
        eager_wakeups=not fast,
    )


@pytest.mark.parametrize("name", sorted(SCHEDULER_FACTORIES))
@pytest.mark.parametrize("seed", [5, 11])
def test_shared_coin_equivalence_across_schedulers(name, seed):
    fast = run_shared_coin(name, seed, fast=True)
    slow = run_shared_coin(name, seed, fast=False)
    assert observable(fast) == observable(slow), divergence_hint(
        f"cached != uncached for shared coin ({name}, seed {seed})"
    )
    # The reference kernel really ran unoptimised.
    assert slow.metrics.verification_cache_hits == 0
    assert slow.metrics.wait_skips == 0


@pytest.mark.parametrize("seed", range(3))
def test_whp_coin_equivalence(seed):
    n, f = 40, 1
    params = ProtocolParams.simulation_scale(n=n, f=f)

    def run(fast: bool) -> RunResult:
        return run_protocol(
            n, f, lambda ctx: whp_coin(ctx, 0),
            corrupt=set(range(f)), params=params, seed=seed,
            verify_cache=fast, eager_wakeups=not fast,
        )

    fast, slow = run(True), run(False)
    assert observable(fast) == observable(slow), divergence_hint(
        f"cached != uncached for whp_coin (seed {seed})"
    )
    # At whp-coin scale the cache should actually be doing work.
    assert fast.metrics.verification_cache_hits > 0


@pytest.mark.parametrize("seed", range(2))
def test_byzantine_agreement_equivalence(seed):
    n = 24
    factory, params, f = make_runner("whp_ba", n, seed=seed)

    def run(fast: bool) -> RunResult:
        return run_protocol(
            n, f, factory, corrupt=set(range(f)), params=params,
            stop_condition=stop_when_all_decided, seed=seed,
            verify_cache=fast, eager_wakeups=not fast,
        )

    fast, slow = run(True), run(False)
    assert observable(fast) == observable(slow), divergence_hint(
        f"cached != uncached for whp_ba (seed {seed})"
    )
    assert fast.metrics.wait_skips > 0  # keyed wakeups actually engaged
