"""The JSON result store and its drift comparator."""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import BernoulliEstimate
from repro.experiments.store import (
    compare_results,
    load_results,
    save_results,
    to_jsonable,
)


class TestToJsonable:
    def test_dataclass_roundtrip(self):
        estimate = BernoulliEstimate(successes=3, trials=10)
        data = to_jsonable(estimate)
        assert data == {"successes": 3, "trials": 10, "z": 1.96}

    def test_nested_experiment_rows(self):
        from repro.experiments.table1 import Table1Row

        row = Table1Row(
            protocol="mmr", n=10, f=3, trials=2, terminated=2, agreed=2,
            mean_words=12.5, mean_duration=4.0, mean_rounds=float("nan"),
        )
        data = to_jsonable([row])
        assert data[0]["protocol"] == "mmr"
        assert data[0]["mean_rounds"] is None  # NaN -> null

    def test_tuples_and_sets(self):
        assert to_jsonable((1, 2)) == [1, 2]
        assert to_jsonable({"a": frozenset({2, 1})}) == {"a": [1, 2]}

    def test_infinities_become_null(self):
        assert to_jsonable(math.inf) is None

    def test_opaque_objects_repr(self):
        data = to_jsonable(object())
        assert isinstance(data, str) and "object" in data


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        payload = {"rows": [{"n": 10, "words": 123.5}]}
        path = save_results("demo", payload, tmp_path)
        assert path.exists()
        assert load_results("demo", tmp_path) == payload

    def test_experiment_end_to_end(self, tmp_path):
        from repro.experiments import coin_success

        points = coin_success.run(n=10, f_values=(0,), seeds=range(3))
        save_results("e1", points, tmp_path)
        loaded = load_results("e1", tmp_path)
        assert loaded[0]["n"] == 10
        assert loaded[0]["estimate"]["trials"] == 3


class TestCompare:
    def test_identical_is_clean(self):
        data = {"a": [1, 2.0, "x"], "b": {"c": True}}
        assert compare_results(data, data) == []

    def test_within_tolerance_is_clean(self):
        assert compare_results({"v": 100.0}, {"v": 105.0}, rel_tol=0.1) == []

    def test_beyond_tolerance_reports(self):
        drifts = compare_results({"v": 100.0}, {"v": 150.0}, rel_tol=0.1)
        assert len(drifts) == 1
        assert "$.v" in drifts[0]

    def test_structure_changes_report(self):
        assert compare_results({"a": 1}, {"b": 1})
        assert compare_results([1, 2], [1, 2, 3])
        assert compare_results({"a": True}, {"a": False})

    def test_strings_compare_exactly(self):
        assert compare_results({"s": "yes"}, {"s": "no"})

    def test_bool_not_treated_as_number(self):
        # True == 1 numerically; the store must still flag it.
        assert compare_results({"a": True}, {"a": 1})

    def test_null_vs_number_reports(self):
        assert compare_results({"a": None}, {"a": 1.0})

    def test_golden_baseline_workflow(self, tmp_path):
        from repro.experiments import coin_success

        points = coin_success.run(n=10, f_values=(0,), seeds=range(3))
        save_results("golden", points, tmp_path)
        rerun = coin_success.run(n=10, f_values=(0,), seeds=range(3))
        drifts = compare_results(
            load_results("golden", tmp_path), to_jsonable(rerun)
        )
        assert drifts == []  # deterministic seeds -> no drift
