"""E6 in miniature: the delayed-adaptive restriction is load-bearing.

Under any *legal* (content-oblivious) scheduler the shared coin agrees in
essentially every run at this scale; a scheduler that reads VRF values and
withholds the minimum -- illegal under Definition 2.1 -- collapses the
agreement rate to roughly a half.
"""

from __future__ import annotations

import random

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.sim.adversary import (
    Adversary,
    ContentAwareMinWithholdScheduler,
    RandomScheduler,
)
from repro.sim.runner import run_protocol

N, F = 16, 3
PARAMS = ProtocolParams(n=N, f=F)
TRIALS = 25


def agreement_rate(scheduler_cls) -> float:
    agreements = 0
    for seed in range(TRIALS):
        adversary = Adversary(scheduler=scheduler_cls(random.Random(seed)))
        result = run_protocol(
            N, F, lambda ctx: shared_coin(ctx, 0),
            adversary=adversary, params=PARAMS, seed=seed,
        )
        assert result.live
        if len(result.returned_values) == 1:
            agreements += 1
    return agreements / TRIALS


class TestDelayedAdaptivityAblation:
    def test_oblivious_scheduler_agrees_almost_always(self):
        assert agreement_rate(RandomScheduler) >= 0.9

    def test_content_aware_scheduler_breaks_the_coin(self):
        rate = agreement_rate(ContentAwareMinWithholdScheduler)
        # The attack de-correlates the minimum-holder from everyone else:
        # agreement only when the two smallest values share an LSB (~1/2).
        assert rate <= 0.8

    def test_gap_is_substantial(self):
        gap = agreement_rate(RandomScheduler) - agreement_rate(
            ContentAwareMinWithholdScheduler
        )
        assert gap >= 0.15
