"""The coverage atlas pipeline: cross-run accumulation, the conformance
sweep's novelty accounting, the stagnation gate, the `repro coverage`
CLI, trend-store dedupe, and the sidecar version diagnostics."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import conformance
from repro.experiments.coverage_atlas import (
    ATLAS_SCHEMA,
    CoverageAtlas,
    format_atlas,
    format_coverage_run,
)
from repro.experiments.dashboard import build_dashboard
from repro.experiments.trends import TrendStore, payload_fingerprint
from repro.sim.telemetry import (
    TELEMETRY_SCHEMA,
    TELEMETRY_SCHEMA_VERSION,
    load_telemetry,
)


def seeded_atlas(tmp_path, runs):
    """An atlas with one record per (name, signatures) pair."""
    atlas = CoverageAtlas(tmp_path)
    for index, (name, signatures) in enumerate(runs):
        atlas.record_run({"source": name, "seed": index}, signatures, ts=float(index))
    return atlas


class TestAtlasJournal:
    def test_record_and_novelty_accounting(self, tmp_path):
        atlas = seeded_atlas(tmp_path, [
            ("a", ["race:x:A^B", "perm:x:A>B"]),
            ("b", ["race:x:A^B", "delay:A:h0"]),
        ])
        records = atlas.load()
        assert [r["new_count"] for r in records] == [2, 1]
        assert records[1]["new_signatures"] == ["delay:A:h0"]
        assert records[1]["known_after"] == 3
        assert atlas.known_signatures() == {
            "race:x:A^B", "perm:x:A>B", "delay:A:h0",
        }

    def test_growth_curve(self, tmp_path):
        atlas = seeded_atlas(tmp_path, [
            ("a", ["s1", "s2"]),
            ("b", ["s1", "s2"]),  # nothing new
        ])
        growth = atlas.growth()
        assert [point["new"] for point in growth] == [2, 0]
        assert growth[-1]["new_rate"] == 0.0
        assert growth[-1]["known_after"] == 2

    def test_rarest_ranking(self, tmp_path):
        atlas = seeded_atlas(tmp_path, [
            ("a", ["common", "rare"]),
            ("b", ["common"]),
            ("c", ["common"]),
        ])
        assert atlas.rarest(2) == [("rare", 1), ("common", 3)]

    def test_missing_journal_is_empty(self, tmp_path):
        atlas = CoverageAtlas(tmp_path)
        assert atlas.load() == []
        assert atlas.known_signatures() == set()
        assert "no coverage atlas" in format_atlas(atlas)

    def test_foreign_schema_diagnosed_with_record_number(self, tmp_path):
        atlas = CoverageAtlas(tmp_path)
        atlas.record_run({"source": "a"}, ["s1"], ts=0.0)
        with atlas.path.open("a") as handle:
            handle.write('{"schema": "other.thing", "version": 1}\n')
        with pytest.raises(ValueError, match="record 2.*other.thing"):
            atlas.load()

    def test_future_version_diagnosed(self, tmp_path):
        atlas = CoverageAtlas(tmp_path)
        record = {"schema": ATLAS_SCHEMA, "version": 99, "signatures": []}
        atlas.path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="version 99"):
            atlas.load()


class TestAtlasRendering:
    def test_atlas_view(self, tmp_path):
        atlas = seeded_atlas(tmp_path, [
            ("a", ["race:x:A^B", "perm:x:A>B"]),
            ("b", ["race:x:A^B", "race:x:B^A"]),
        ])
        text = format_atlas(atlas)
        assert "2 runs recorded, 3 distinct signatures" in text
        assert "atlas growth" in text and "rarest signatures" in text
        assert "race" in text and "perm" in text

    def test_run_view_diffs_against_atlas(self, tmp_path):
        atlas = seeded_atlas(tmp_path, [("a", ["known:sig"])])
        snapshot = {
            "signatures": {"known:sig": 3, "fresh:sig": 1},
            "total_signatures": 2,
            "total_hits": 4,
            "families": {"known": {"signatures": 1, "hits": 3},
                         "fresh": {"signatures": 1, "hits": 1}},
            "counters": {"events": 40},
            "dropped_signatures": 0,
        }
        text = format_coverage_run(snapshot, atlas=atlas, source="x.jsonl")
        assert "coverage of x.jsonl" in text
        assert "1 of 2 signatures are new" in text
        assert "+ fresh:sig" in text


class TestConformanceCoverage:
    def test_sweep_reports_coverage_and_feeds_atlas(self, tmp_path):
        atlas = CoverageAtlas(tmp_path)
        payload = conformance.run_check(
            protocols=("whp_ba",), n=16, seeds=range(2), atlas=atlas
        )
        sweep = payload["coverage"]
        assert sweep["runs_total"] == 2
        assert sweep["baseline_signatures"] == 0
        # a fresh atlas: the first seed always contributes
        assert sweep["runs_with_new"] >= 1
        assert sweep["unique_signatures"] > 0
        for row in payload["protocols"]["whp_ba"]["runs"]:
            assert row["signatures"] > 0
        assert len(atlas.load()) == 2
        text = conformance.format_check(payload)
        assert "coverage:" in text and "contributed new interleavings" in text

    def test_repeat_sweep_is_stagnant(self, tmp_path):
        atlas = CoverageAtlas(tmp_path)
        conformance.run_check(protocols=("whp_ba",), n=16, seeds=[0], atlas=atlas)
        again = conformance.run_check(
            protocols=("whp_ba",), n=16, seeds=[0], atlas=atlas
        )
        assert again["coverage"]["runs_with_new"] == 0
        assert again["coverage"]["baseline_signatures"] > 0

    def test_coverage_off_leaves_payload_clean(self):
        payload = conformance.run_check(
            protocols=("whp_ba",), n=16, seeds=[0], coverage=False
        )
        assert "coverage" not in payload
        assert "coverage" not in payload["protocols"]["whp_ba"]


class TestCoverageGate:
    def anomalous(self):
        return {"whp_ba": {"conformance": {"whp_flags": 2, "monitors": {}}}}

    def gate(self, runs_with_new, protocols):
        return conformance.coverage_gate({
            "coverage": {"runs_with_new": runs_with_new, "runs_total": 4},
            "protocols": protocols,
        })

    def test_stagnant_with_anomaly_fails(self):
        verdict = self.gate(0, self.anomalous())
        assert not verdict["ok"] and verdict["stagnant"]
        assert "FAIL" in conformance.format_coverage_gate(verdict)

    def test_stagnant_without_anomaly_passes(self):
        verdict = self.gate(0, {"whp_ba": {"conformance": {"monitors": {}}}})
        assert verdict["ok"] and verdict["stagnant"]

    def test_fresh_coverage_with_anomaly_passes(self):
        verdict = self.gate(2, self.anomalous())
        assert verdict["ok"] and not verdict["stagnant"]
        assert "PASS" in conformance.format_coverage_gate(verdict)

    def test_nested_rate_anomaly_detected(self):
        protocols = {"whp_ba": {"conformance": {
            "monitors": {"coin": {"agreement_rate": {"conformant": False}}},
        }}}
        verdict = self.gate(0, protocols)
        assert not verdict["ok"]
        assert any("agreement_rate" in a for a in verdict["anomalies"])

    def test_no_coverage_accounting_is_vacuous(self):
        verdict = conformance.coverage_gate({"protocols": {}})
        assert verdict["ok"]
        assert "vacuous" in conformance.format_coverage_gate(verdict)


class TestCoverageCLI:
    def check(self, tmp_path, monkeypatch, seeds="2"):
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--n", "16", "--seeds", seeds,
                     "--protocols", "whp_ba"]) == 0

    def test_check_seeds_atlas_then_views_render(self, capsys, tmp_path, monkeypatch):
        self.check(tmp_path, monkeypatch)
        capsys.readouterr()
        assert (tmp_path / "BENCH_coverage_atlas.jsonl").exists()
        assert main(["coverage"]) == 0
        out = capsys.readouterr().out
        assert "coverage atlas" in out and "runs recorded" in out

    def test_recording_view(self, capsys, tmp_path, monkeypatch):
        self.check(tmp_path, monkeypatch)
        assert main(["record", "--n", "16", "--seed", "5",
                     "--out", "flight.jsonl"]) == 0
        capsys.readouterr()
        assert main(["coverage", "flight.jsonl"]) == 0
        out = capsys.readouterr().out
        assert "coverage of flight.jsonl" in out
        assert "vs atlas" in out

    def test_gate_passes_after_fresh_check(self, capsys, tmp_path, monkeypatch):
        self.check(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["coverage", "--gate"]) == 0
        assert "GATE: PASS" in capsys.readouterr().out

    def test_gate_without_check_diagnosed(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="no conformance record"):
            main(["coverage", "--gate"])

    def test_missing_recording_diagnosed(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="no such recording"):
            main(["coverage", "nope.jsonl"])

    def test_damaged_atlas_diagnosed(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH_coverage_atlas.jsonl").write_text(
            '{"schema": "other.thing"}\n'
        )
        with pytest.raises(SystemExit, match="repro coverage:.*other.thing"):
            main(["coverage"])
        # and `repro check` refuses to append to it rather than mixing schemas
        with pytest.raises(SystemExit, match="repro check:"):
            main(["check", "--n", "16", "--seeds", "1", "--protocols", "whp_ba"])

    def test_coverage_listed(self, capsys):
        assert main(["list"]) == 0
        assert "coverage" in capsys.readouterr().out


class TestTrendDedupe:
    def test_identical_payload_same_commit_dedupes(self, tmp_path):
        store = TrendStore(tmp_path)
        first = store.append("bench", {"words": 100})
        second = store.append("bench", {"words": 100})
        assert second is first or second == first
        assert len(store.history("bench")) == 1

    def test_changed_payload_appends(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100})
        store.append("bench", {"words": 101})
        assert len(store.history("bench")) == 2

    def test_dedupe_opt_out(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100}, dedupe=False)
        store.append("bench", {"words": 100}, dedupe=False)
        assert len(store.history("bench")) == 2

    def test_fingerprint_ignores_volatile_fields(self):
        base = {"deliveries": 10, "wallclock": {"bare_seconds": 1.0}}
        slower = {"deliveries": 10, "wallclock": {"bare_seconds": 9.0}}
        assert payload_fingerprint(base) == payload_fingerprint(slower)
        assert payload_fingerprint(base) != payload_fingerprint(
            {"deliveries": 11, "wallclock": {"bare_seconds": 1.0}}
        )

    def test_atlas_novelty_fields_excluded_from_fingerprint(self):
        """Atlas-dependent novelty numbers shift between identical
        sweeps as the atlas accumulates; they must not defeat dedupe
        (nor be gated -- same exclusion list)."""
        first = {"coverage": {"unique_signatures": 9, "runs_with_new": 2,
                              "baseline_signatures": 0, "new_rate": 1.0}}
        second = {"coverage": {"unique_signatures": 9, "runs_with_new": 0,
                               "baseline_signatures": 9, "new_rate": 0.0}}
        assert payload_fingerprint(first) == payload_fingerprint(second)


class TestSidecarVersionDiagnostics:
    def sidecar(self, tmp_path, version):
        path = tmp_path / "flight.telemetry.json"
        path.write_text(json.dumps({
            "schema": TELEMETRY_SCHEMA, "version": version, "series": {},
        }))
        return path

    def test_newer_sidecar_names_the_upgrade(self, tmp_path):
        path = self.sidecar(tmp_path, TELEMETRY_SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="newer build; upgrade"):
            load_telemetry(path)

    def test_older_sidecar_suggests_rerecording(self, tmp_path):
        path = self.sidecar(tmp_path, 0)
        with pytest.raises(ValueError, match="re-record"):
            load_telemetry(path)

    def test_report_appends_one_line_note(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["record", "--n", "16", "--seed", "1",
                     "--out", "flight.jsonl"]) == 0
        self.sidecar(tmp_path, TELEMETRY_SCHEMA_VERSION + 1)
        capsys.readouterr()
        assert main(["report", "flight.jsonl"]) == 0
        out = capsys.readouterr().out
        assert "note: telemetry sidecar unusable" in out
        assert "newer build" in out


class TestDashboardCoverage:
    def test_coverage_section_renders(self, tmp_path):
        atlas = seeded_atlas(tmp_path, [
            ("a", ["race:x:A^B"]), ("b", ["race:x:A^B", "perm:x:A>B"]),
        ])
        html, diagnostics = build_dashboard(atlas=atlas)
        assert "Schedule coverage" in html or "coverage" in html
        assert not any("coverage" in d for d in diagnostics)

    def test_empty_atlas_becomes_diagnostic(self, tmp_path):
        html, diagnostics = build_dashboard(atlas=CoverageAtlas(tmp_path))
        assert any("coverage" in d for d in diagnostics)

    def test_unreadable_atlas_becomes_diagnostic(self, tmp_path):
        atlas = CoverageAtlas(tmp_path)
        atlas.path.write_text("not json\n")
        html, diagnostics = build_dashboard(atlas=atlas)
        assert any("coverage atlas unreadable" in d for d in diagnostics)
