"""`repro dashboard` and `repro trends --gate`: the single-pane HTML
report and the CI regression gate over the trend store."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.dashboard import build_dashboard, render_dashboard
from repro.experiments.trends import (
    TrendStore,
    format_gate,
    gate_trends,
    numeric_drifts,
    numeric_leaves,
    sparkline,
)

SECTION_IDS = ("run", "telemetry", "trends", "conformance", "scaling")


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One small recorded run (with telemetry sidecar) shared across tests."""
    root = tmp_path_factory.mktemp("dashboard")
    recording = root / "flight.jsonl"
    assert main(["record", "--n", "16", "--seed", "2", "--out", str(recording)]) == 0
    return root, recording


class TestDashboardStructure:
    """Structure-level golden test: the pane is complete and offline."""

    def test_full_dashboard_from_recording(self, recorded):
        root, recording = recorded
        store = TrendStore(root)
        store.append("bench", {"words": 100}, ts=1.0)
        store.append("bench", {"words": 101}, ts=2.0)
        out, diagnostics = render_dashboard(
            root / "dashboard.html", recording_path=recording, root=root
        )
        document = out.read_text()
        assert document.startswith("<!doctype html>")
        assert document.rstrip().endswith("</html>")
        for section in SECTION_IDS:
            assert f"<section id='{section}'>" in document
        # Telemetry charts are inline SVG, rendered from the sidecar.
        assert "<svg" in document and "polyline" in document
        assert "cumulative words by layer" in document
        assert "link_latency_steps" in document
        # The trends table names the series and its drift verdict.
        assert ">bench<" in document and "within" in document
        # Missing conformance/scaling records degrade to diagnostics,
        # which are also reported to the caller.
        assert "no conformance record" in document
        assert any("conformance" in d for d in diagnostics)

    def test_dashboard_is_self_contained(self, recorded):
        root, recording = recorded
        out, _ = render_dashboard(
            root / "pane.html", recording_path=recording, root=root
        )
        document = out.read_text()
        # No network fetches, no scripts, no external assets: the file
        # must render identically from a mail attachment.
        assert "<script" not in document
        assert "http://" not in document and "https://" not in document
        for attribute in ("src=", "href=", "@import"):
            assert attribute not in document

    def test_empty_repository_dashboard_still_renders(self, tmp_path):
        out, diagnostics = render_dashboard(tmp_path / "d.html", root=tmp_path)
        document = out.read_text()
        for section in SECTION_IDS:
            assert f"<section id='{section}'>" in document
        assert "no recording supplied" in document
        assert "trend store empty" in document
        # Each one-line diagnostic names the command that would fill it.
        assert "python -m repro record" in document
        assert "repro check" in document
        assert len(diagnostics) >= 4

    def test_damaged_recording_degrades_to_diagnostic(self, tmp_path):
        recording = tmp_path / "flight.jsonl"
        recording.write_text('{"schema": "repro.fl')  # truncated mid-header
        out, diagnostics = render_dashboard(
            tmp_path / "d.html", recording_path=recording, root=tmp_path
        )
        assert any("recording unusable" in d for d in diagnostics)
        assert "recording unusable" in out.read_text()

    def test_build_dashboard_marks_drift(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100}, ts=1.0)
        store.append("bench", {"words": 900}, ts=2.0)
        document, _ = build_dashboard(store=store, rel_tol=0.25)
        assert "class='drift'" in document
        assert "words" in document


class TestDashboardCLI:
    def test_cli_writes_file_and_reports_diagnostics(
        self, recorded, tmp_path, monkeypatch, capsys
    ):
        _, recording = recorded
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "dash.html"
        assert main(["dashboard", str(recording), "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "dashboard ->" in printed
        assert "note:" in printed  # empty cwd store -> diagnostics on stdout
        assert out.exists()

    def test_dashboard_listed(self, capsys):
        assert main(["list"]) == 0
        assert "dashboard" in capsys.readouterr().out


class TestTrendGate:
    def test_gate_fails_on_injected_regression(self, tmp_path, monkeypatch, capsys):
        store = TrendStore(tmp_path)
        store.append("E4_scaling", {"mean_words": 1000}, ts=1.0)
        store.append("E4_scaling", {"mean_words": 2000}, ts=2.0)
        monkeypatch.chdir(tmp_path)
        assert main(["trends", "--gate"]) == 1
        out = capsys.readouterr().out
        assert "GATE: FAIL" in out
        assert "mean_words" in out and "DRIFT" in out

    def test_gate_passes_within_tolerance(self, tmp_path, monkeypatch, capsys):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100}, ts=1.0)
        store.append("bench", {"words": 104}, ts=2.0)
        monkeypatch.chdir(tmp_path)
        assert main(["trends", "--gate"]) == 0
        assert "GATE: PASS" in capsys.readouterr().out

    def test_tolerance_flag_tightens_the_gate(self, tmp_path, monkeypatch):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100}, ts=1.0)
        store.append("bench", {"words": 110}, ts=2.0)
        monkeypatch.chdir(tmp_path)
        assert main(["trends", "--gate"]) == 0  # default 25%
        assert main(["trends", "--gate", "--tolerance", "5"]) == 1

    def test_gate_passes_on_real_store(self, tmp_path, monkeypatch, capsys):
        # The CI wiring: two real conformance runs append to the store,
        # then the gate must pass -- the sweep is deterministic, so the
        # two payloads' numeric leaves are identical.
        monkeypatch.chdir(tmp_path)
        for _ in range(2):
            main(["check", "--n", "16", "--seeds", "1", "--protocols", "whp_ba"])
        capsys.readouterr()
        assert main(["trends", "--gate"]) == 0
        out = capsys.readouterr().out
        assert "GATE: PASS" in out and "conformance" in out

    def test_empty_store_passes_vacuously(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trends", "--gate"]) == 0

    def test_wallclock_fields_not_gated(self):
        before = {"words": 100, "wallclock": {"bare_seconds": 1.0}}
        after = {"words": 100, "wallclock": {"bare_seconds": 9.0}}
        assert numeric_drifts(before, after, rel_tol=0.25) == []
        assert "$.words" in numeric_leaves(before)

    def test_gate_verdict_structure(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100}, ts=1.0)
        store.append("bench", {"words": 400}, ts=2.0)
        verdict = gate_trends(store, rel_tol=0.25)
        assert verdict["ok"] is False and verdict["checked"] == 1
        entry = verdict["series"]["bench"]
        assert entry["ok"] is False and len(entry["drifts"]) == 1
        assert entry["tracking"] == "$.words"
        assert entry["trend"] == [100.0, 400.0]
        assert "GATE: FAIL" in format_gate(verdict)


class TestTrendGateDiagnostics:
    """Satellite: degenerate gate inputs get a one-line diagnosis instead
    of a bare vacuous PASS."""

    def test_empty_store_names_the_missing_path(self, tmp_path):
        store = TrendStore(tmp_path)
        verdict = gate_trends(store, rel_tol=0.25)
        assert verdict["ok"] is True and verdict["checked"] == 0
        assert "trend store empty or missing" in verdict["note"]
        assert str(store.path) in verdict["note"]
        assert f"note: {verdict['note']}" in format_gate(verdict)

    def test_single_record_series_is_named_not_counted(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100}, ts=1.0)
        verdict = gate_trends(store, rel_tol=0.25)
        assert verdict["ok"] is True and verdict["checked"] == 0
        assert verdict["note"] == (
            "no series has two records in the window yet; nothing to gate"
        )
        entry = verdict["series"]["bench"]
        assert entry["note"] == "first record; nothing to diff"
        assert "(first record; nothing to diff)" in format_gate(verdict)

    def test_nan_transition_is_a_drift(self):
        drifts = numeric_drifts(
            {"rate": float("nan")}, {"rate": 1.0}, rel_tol=0.25
        )
        assert drifts == ["$.rate: nan -> 1 (NaN transition)"]
        # ...in either direction.
        assert numeric_drifts(
            {"rate": 1.0}, {"rate": float("nan")}, rel_tol=0.25
        ) == ["$.rate: 1 -> nan (NaN transition)"]

    def test_all_nan_leaves_are_skipped_with_a_note(self, tmp_path):
        # store.append maps NaN to null (to_jsonable), so a NaN-bearing
        # journal comes from an external writer -- simulate one directly.
        store = TrendStore(tmp_path)
        lines = [
            json.dumps({
                "schema": "repro.trends", "version": 1, "name": "bench",
                "ts": ts, "payload": {"rate": float("nan"), "words": words},
            })
            for ts, words in ((1.0, 7), (2.0, 8))
        ]
        store.path.write_text("\n".join(lines) + "\n")
        verdict = gate_trends(store, rel_tol=0.25)
        assert verdict["ok"] is True and verdict["checked"] == 1
        entry = verdict["series"]["bench"]
        assert entry["ok"] is True
        assert "all-NaN" in entry["note"] and "$.rate" in entry["note"]

    def test_no_shared_leaves_is_named(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench", {"old_metric": 1}, ts=1.0)
        store.append("bench", {"new_metric": 2}, ts=2.0)
        verdict = gate_trends(store, rel_tol=0.25)
        entry = verdict["series"]["bench"]
        assert entry["ok"] is True
        assert entry["note"] == (
            "no numeric leaves shared between the window's records; "
            "nothing to diff"
        )

    def test_fuzz_novelty_counters_not_gated(self):
        # Fuzz campaigns nest all atlas-dependent counters under
        # "novelty"; a second campaign legitimately finds fewer novel
        # signatures, which must not read as a regression.
        before = {"budget": 200, "novelty": {"new_signatures": 9}}
        after = {"budget": 200, "novelty": {"new_signatures": 0}}
        assert numeric_drifts(before, after, rel_tol=0.25) == []

    def test_trends_cli_reports_missing_store(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["trends", "--gate"]) == 0
        out = capsys.readouterr().out
        assert "note: trend store empty or missing" in out


class TestTrendsWindow:
    """Satellite: `--last N` widens the sparkline/drift window."""

    def _store(self, tmp_path):
        store = TrendStore(tmp_path)
        for index, words in enumerate((100, 150, 200, 400)):
            store.append("bench", {"words": words}, ts=float(index))
        return store

    def test_last_flag_widens_drift_baseline(self, tmp_path, monkeypatch, capsys):
        self._store(tmp_path)
        monkeypatch.chdir(tmp_path)
        # Newest vs one back: 200 -> 400 is beyond 150%? No: tolerance
        # 300% passes the adjacent pair but fails against 4 records back.
        assert main(["trends", "--gate", "--tolerance", "150"]) == 0
        assert main(
            ["trends", "--gate", "--tolerance", "150", "--last", "4"]
        ) == 1
        capsys.readouterr()

    def test_sparkline_rendered_over_window(self, tmp_path, monkeypatch, capsys):
        self._store(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["trends", "--last", "4"]) == 0
        out = capsys.readouterr().out
        assert "tracking $.words" in out
        spark = sparkline([100.0, 150.0, 200.0, 400.0])
        assert len(spark) == 4 and spark in out

    def test_sparkline_charset(self):
        assert sparkline([]) == ""
        assert sparkline([5.0]) == "+"  # the charset's middle level
        flat = sparkline([3.0, 3.0, 3.0])
        assert len(set(flat)) == 1
        ramp = sparkline([0.0, 1.0, 2.0, 3.0])
        assert ramp[0] == "_" and ramp[-1] == "@"


class TestRecordSidecar:
    def test_record_writes_and_reports_sidecar(self, recorded):
        root, recording = recorded
        sidecar = root / "flight.telemetry.json"
        assert sidecar.exists()
        snapshot = json.loads(sidecar.read_text())
        assert snapshot["schema"] == "repro.telemetry"
        assert snapshot["run"]["n"] == 16
        assert snapshot["counters"]["delivers"] > 0

    def test_no_telemetry_flag_skips_sidecar(self, tmp_path, capsys):
        recording = tmp_path / "bare.jsonl"
        assert main(
            ["record", "--n", "16", "--seed", "2", "--out", str(recording),
             "--no-telemetry"]
        ) == 0
        assert "sidecar" not in capsys.readouterr().out
        assert not (tmp_path / "bare.telemetry.json").exists()

    def test_dashboard_falls_back_to_replay_without_sidecar(self, tmp_path):
        recording = tmp_path / "bare.jsonl"
        assert main(
            ["record", "--n", "16", "--seed", "2", "--out", str(recording),
             "--no-telemetry"]
        ) == 0
        out, diagnostics = render_dashboard(
            tmp_path / "d.html", recording_path=recording, root=tmp_path
        )
        document = out.read_text()
        assert "cumulative words by layer" in document  # replayed telemetry
        assert not any("telemetry" in d for d in diagnostics)
