"""Smoke tests for the experiment harness (tiny configurations).

The benchmarks drive these modules at publication scale; here we pin that
every experiment runs, returns structured rows, formats, and satisfies
its headline property at smoke scale.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import ablation as e6
from repro.experiments import coin_success as e1
from repro.experiments import committee_bounds as e2
from repro.experiments import fig1
from repro.experiments import mmr_ourcoin as e7
from repro.experiments import rounds as e5
from repro.experiments import safety as e8
from repro.experiments import scaling as e4
from repro.experiments import table1
from repro.experiments import whp_coin_sweep as e3
from repro.experiments.protocols import PROTOCOLS, default_f, make_runner
from repro.experiments.tables import format_table


class TestTables:
    def test_alignment_and_content(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 10_000]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # fully aligned
        assert "10,000" in text
        assert "2.50" in text

    def test_empty_rows(self):
        text = format_table(["h1", "h2"], [])
        assert "h1" in text


class TestProtocolRegistry:
    def test_all_protocols_constructible(self):
        for name in PROTOCOLS:
            factory, params, f = make_runner(name, 16, seed=0)
            assert callable(factory)
            assert params.n == 16
            assert 0 < f < 16

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            make_runner("pbft", 16)

    def test_default_f_respects_resilience(self):
        assert default_f("benor", 30) <= 30 / 5
        assert default_f("rabin", 33) <= 33 / 10
        assert default_f("bracha", 30) < 10


class TestT1:
    def test_smoke(self):
        rows = table1.run(n=16, seeds=range(2), protocols=("mmr", "cachin"))
        assert len(rows) == 2
        for row in rows:
            assert row.terminated == row.trials
            assert row.agreed == row.terminated
            assert row.mean_words > 0
        text = table1.format_table1(rows)
        assert "O(n^2)" in text


class TestF1:
    def test_smoke(self):
        params, stats = fig1.run(n=80, seeds=range(4))
        assert len(stats) == 4
        for stat in stats:
            assert stat.trials == 4
            assert stat.mean_size == pytest.approx(params.lam, rel=0.5)
        assert "committee" in fig1.format_fig1(params, stats)


class TestE1:
    def test_measured_rate_above_bound(self):
        points = e1.run(n=12, f_values=(0, 2), seeds=range(8))
        for point in points:
            assert point.estimate.mean >= max(0.0, 2 * point.paper_bound) - 1e-9
        assert "epsilon" in e1.format_coin_success(points)

    def test_perfect_coin_without_faults_has_full_ci(self):
        (point,) = e1.run(n=10, f_values=(0,), seeds=range(6))
        assert point.estimate.mean == 1.0


class TestE1b:
    def test_common_values_above_lemma_bound(self):
        from repro.experiments import common_values

        points = common_values.run(n=12, f_values=(0, 2), seeds=range(4))
        for point in points:
            assert point.min_c >= point.paper_bound_c - 1e-9
            assert 0 <= point.min_common_rate <= 1
        assert "Lemma 4.2" in common_values.format_common_values(points)

    def test_f_zero_everything_common(self):
        from repro.experiments import common_values

        (point,) = common_values.run(n=10, f_values=(0,), seeds=range(3))
        # With f = 0 every process's value reaches everyone in phase 1.
        assert point.mean_c == 10
        assert point.min_common_rate == 1.0


class TestE2:
    def test_smoke(self):
        points = e2.run(n_values=(60,), f_fraction=0.1, seeds=range(15))
        (point,) = points
        assert point.trials == 15
        assert set(point.violations) == {"S1", "S2", "S3", "S4"}
        assert "Chernoff" in e2.format_committee_bounds(points)

    def test_simulation_params_have_low_s3(self):
        points = e2.run(
            n_values=(80,), f_fraction=0.05, seeds=range(20), paper_lambda=False
        )
        (point,) = points
        # simulation_scale picks 3-sigma margins: S3/S4 violations rare.
        assert point.violations["S3"] <= 2
        assert point.violations["S4"] <= 2


class TestE3:
    def test_smoke(self):
        points = e3.run(n=60, f=2, d_values=(0.02,), lam=45, seeds=range(5))
        (point,) = points
        assert point.live >= 4
        assert point.agreement.mean >= 0.6
        assert "lam" in e3.format_whp_coin(points)


class TestE4:
    def test_smoke_slopes(self):
        curves = e4.run(n_values=(16, 32), seeds=range(2), protocols=("cachin",))
        (curve,) = curves
        assert curve.mean_words[1] > curve.mean_words[0]
        assert 1.0 < curve.slope_words < 3.0
        assert "slope" in e4.format_scaling(curves)


class TestE5:
    def test_rounds_constant_ish(self):
        points = e5.run(n_values=(24, 48), seeds=range(3))
        for point in points:
            assert point.completed == point.trials
            assert point.mean_rounds <= 5
        assert "histogram" in e5.format_rounds(points)


class TestE6:
    def test_content_aware_below_legal(self):
        rows = e6.run(n=12, f=2, seeds=range(15))
        by_name = {row.scheduler: row for row in rows}
        assert by_name["random"].agreement.mean >= 0.9
        assert (
            by_name["content-aware"].agreement.mean
            <= by_name["random"].agreement.mean
        )
        assert "NO" in e6.format_ablation(rows)


class TestE7:
    def test_shared_coin_beats_local_on_rounds(self):
        rows = e7.run(n=16, seeds=range(6), variants=("mmr", "mmr+alg1"))
        by_name = {row.variant: row for row in rows}
        assert by_name["mmr+alg1"].mean_rounds <= by_name["mmr"].mean_rounds + 1
        assert by_name["mmr+alg1"].max_rounds <= 6
        assert "Algorithm 1" in e7.format_mmr_ourcoin(rows)


class TestX1:
    def test_hybrid_fallback_smoke(self):
        from repro.experiments import hybrid_fallback

        points = hybrid_fallback.run(
            n=40, f=2, committee_round_values=(0, 2), seeds=range(2)
        )
        by_rounds = {point.committee_rounds: point for point in points}
        assert by_rounds[0].committee_deciders == 0
        assert by_rounds[0].fallback_runs == by_rounds[0].terminated
        assert by_rounds[2].committee_deciders > 0
        assert "fallback runs" in hybrid_fallback.format_hybrid(points)


class TestX2:
    def test_justification_is_load_bearing(self):
        from repro.experiments import justification_ablation as x2

        points = x2.run(n=40, f=2, seeds=range(2))
        by_key = {(p.justify, p.attack): p for p in points}
        assert by_key[(True, True)].validity_violations == 0
        assert (
            by_key[(False, True)].validity_violations
            == by_key[(False, True)].live
        )
        assert (
            by_key[(True, False)].mean_words
            > by_key[(False, False)].mean_words
        )
        assert "ablation" in x2.format_justification(points)


class TestE8:
    def test_no_safety_violations(self):
        cells = e8.run(protocols=("mmr",), strategies=("silent-static",), n=13, seeds=range(2))
        for cell in cells:
            assert cell.agreement_violations == 0
            assert cell.validity_violations == 0
        assert "strategy" in e8.format_safety(cells)
