"""Batched delivery is pure: delivery_mode='batched' == 'classic'.

The batched kernel commits scheduler-chosen delivery batches and skips
gated wait re-evaluations, but every committed batch is exactly the seq
sequence the classic one-choose-per-delivery loop would have produced
(the ``Scheduler.drain`` contract), and every skipped evaluation is a
provable no-op (the ``Wait``/``min_count`` contracts).  This matrix is
the empirical certificate: for each (protocol, scheduler, seed) cell the
two modes must agree on *every* observable -- RunResult fields, the full
deterministic metrics dict, and the kernel event stream -- including
under schedulers that cannot drain (the batched kernel then falls back
to the classic step) and with the observability stack attached.
"""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.hashing import derive_seed
from repro.crypto.pki import PKI
from repro.experiments.protocols import make_runner
from repro.sim.adversary import (
    Adversary,
    DelayBoundedScheduler,
    StaticCorruption,
)
from repro.sim.diffing import diff_events, divergence_hint
from repro.sim.flightrecorder import FlightRecorder
from repro.sim.monitors import MonitorSuite, default_monitors
from repro.sim.network import Simulation
from repro.sim.runner import (
    RunResult,
    run_protocol,
    stop_when_all_decided,
)
from repro.sim.telemetry import TelemetryProbe

from tests.integration.test_determinism_matrix import SCHEDULER_FACTORIES

N, F = 10, 2

# The zoo from the determinism matrix (includes drain-declining and
# content-aware schedulers, which exercise the classic fallback) plus the
# bounded-delay scheduler, the canonical randomised *draining* schedule.
ALL_SCHEDULERS = dict(SCHEDULER_FACTORIES)
ALL_SCHEDULERS["delay"] = lambda seed: DelayBoundedScheduler(
    rng=random.Random(seed)
)


def observable(result: RunResult) -> tuple:
    """Every kernel-determined field plus the full gated metrics dict."""
    return (
        result.n,
        result.f,
        result.seed,
        result.corrupted,
        result.returns,
        result.decisions,
        result.decision_depths,
        result.notes,
        result.deliveries,
        result.deadlocked,
        result.exhausted,
        result.stopped_by_condition,
        result.words,
        result.metrics.to_dict(include_timings=False),
    )


def run_shared_coin(scheduler_name: str, seed: int, mode: str) -> RunResult:
    pki = PKI.create(N, rng=random.Random(99))
    adversary = Adversary(
        scheduler=ALL_SCHEDULERS[scheduler_name](seed),
        corruption=StaticCorruption({0, 1}),
    )
    return run_protocol(
        N, F, lambda ctx: shared_coin(ctx, 0),
        adversary=adversary, pki=pki, params=ProtocolParams(n=N, f=F),
        seed=seed, delivery_mode=mode,
    )


@pytest.mark.parametrize("name", sorted(ALL_SCHEDULERS))
@pytest.mark.parametrize("seed", [3, 11])
class TestSharedCoinMatrix:
    def test_batched_equals_classic(self, name, seed):
        classic = run_shared_coin(name, seed, "classic")
        batched = run_shared_coin(name, seed, "batched")
        assert observable(batched) == observable(classic), divergence_hint(
            f"batched != classic for shared coin ({name}, seed {seed})"
        )


def run_ba(protocol: str, scheduler_name: str, seed: int, mode: str,
           n: int = 40, subscribers=None, telemetry=None, monitors=None):
    factory, params, f = make_runner(protocol, n, seed=seed)
    adversary = Adversary(
        scheduler=ALL_SCHEDULERS[scheduler_name](seed),
        corruption=StaticCorruption(set(range(f))),
    )
    return run_protocol(
        n, f, factory, adversary=adversary, params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        delivery_mode=mode, subscribers=subscribers,
        telemetry=telemetry, monitors=monitors,
    )


@pytest.mark.parametrize("protocol", ["whp_ba", "mmr+alg1"])
@pytest.mark.parametrize(
    "scheduler", ["fifo", "delay", "random", "partition", "targeted"]
)
class TestAgreementMatrix:
    def test_batched_equals_classic(self, protocol, scheduler):
        classic = run_ba(protocol, scheduler, seed=7, mode="classic")
        batched = run_ba(protocol, scheduler, seed=7, mode="batched")
        assert observable(batched) == observable(classic), divergence_hint(
            f"batched != classic for {protocol} under {scheduler}"
        )


class TestEventStreamIdentity:
    @pytest.mark.parametrize(
        "scheduler", ["fifo", "delay", "partition", "targeted"]
    )
    def test_full_event_stream_identical(self, scheduler):
        """Not just the aggregates: the *entire* event sequence (sends,
        deliveries, wait blocks/wakes, decides) matches event for event,
        so flight recordings and traces are mode-independent."""
        classic_events: list = []
        batched_events: list = []
        run_ba("whp_ba", scheduler, seed=3, mode="classic",
               subscribers=[classic_events.append])
        run_ba("whp_ba", scheduler, seed=3, mode="batched",
               subscribers=[batched_events.append])
        assert classic_events, "no events recorded"
        if batched_events != classic_events:
            report = diff_events(classic_events, batched_events)
            pytest.fail(
                report.describe()
                + "\n"
                + divergence_hint(
                    f"batched event stream diverged under {scheduler}"
                )
            )


class TestObservabilityStack:
    def test_monitors_and_telemetry_under_batched_mode(self):
        """The online conformance monitors and the telemetry probe see the
        identical event stream, so they pass and snapshot identically."""

        def instrumented(mode):
            probe = TelemetryProbe()
            suite = MonitorSuite(default_monitors())
            result = run_ba("whp_ba", "fifo", seed=5, mode=mode,
                            telemetry=probe, monitors=suite)
            safety = [
                violation
                for violation in suite.violations
                if violation.severity == "safety"
            ]
            return result, probe.snapshot(), safety

        classic_result, classic_snapshot, classic_safety = instrumented("classic")
        batched_result, batched_snapshot, batched_safety = instrumented("batched")
        assert batched_safety == classic_safety == []
        assert observable(batched_result) == observable(classic_result), (
            divergence_hint("batched != classic with observability attached")
        )
        assert batched_snapshot == classic_snapshot


class TestBatchedReplay:
    """Flight recordings made under the batched kernel replay seq-exactly.

    The batched run's event stream is classic-identical (above), so its
    recording must feed a seq-exact :class:`ReplayScheduler` that
    reproduces the stream bit for bit -- and because a replay schedule's
    choices cannot be promised insensitive to mid-batch submissions, the
    scheduler must *decline* to drain: a batched-mode replay falls back
    to the classic step cleanly rather than diverging.
    """

    N_BA, SEED = 40, 9

    def _simulate(self, mode, scheduler):
        """One whp_ba run with direct Simulation access (for the batch
        counters), set up exactly as ``run_protocol`` would."""
        factory, params, f = make_runner("whp_ba", self.N_BA, seed=self.SEED)
        rng = random.Random(derive_seed(self.SEED, "setup"))
        pki = PKI.create(self.N_BA, backend="simulated", rng=rng)
        sim = Simulation(
            n=self.N_BA, f=f, pki=pki,
            adversary=Adversary(
                scheduler=scheduler,
                corruption=StaticCorruption(set(range(f))),
            ),
            seed=self.SEED, params=params,
            stop_condition=stop_when_all_decided,
            delivery_mode=mode,
        )
        recorder = FlightRecorder().attach(sim)
        sim.set_protocol_all(factory)
        sim.run()
        return sim, recorder, RunResult.of(sim)

    def _record_batched(self):
        sim, recorder, result = self._simulate(
            "batched", DelayBoundedScheduler(rng=random.Random(self.SEED))
        )
        # The premise: this recording really was produced by committed
        # scheduler batches, not by the classic fallback.
        assert sim.drain_batches > 0
        assert sim.batched_deliveries > 0
        return recorder, result

    def test_batched_recording_replays_seq_exactly(self):
        recorder, original = self._record_batched()
        sim, replay_recorder, replayed = self._simulate(
            "classic", recorder.replay_scheduler()
        )
        if replay_recorder.events != recorder.events:
            pytest.fail(
                diff_events(recorder.events, replay_recorder.events).describe()
                + "\n"
                + divergence_hint("replay of a batched recording diverged")
            )
        assert observable(replayed) == observable(original)

    def test_replay_under_batched_mode_declines_and_matches(self):
        recorder, original = self._record_batched()
        sim, replay_recorder, replayed = self._simulate(
            "batched", recorder.replay_scheduler()
        )
        # ReplayScheduler declines every drain, so the batched kernel
        # took the classic fallback for the whole run...
        assert sim.batched_deliveries == 0
        # ...and the replay still reproduces the recording exactly.
        if replay_recorder.events != recorder.events:
            pytest.fail(
                diff_events(recorder.events, replay_recorder.events).describe()
                + "\n"
                + divergence_hint("batched-mode replay diverged")
            )
        assert observable(replayed) == observable(original)
