"""Property-based schedule exploration: protocol guarantees must hold for
EVERY legal delivery order, so we let hypothesis choose (and shrink) the
schedule itself via :class:`~repro.sim.adversary.ScriptedScheduler`.

Tiny systems keep each run in the low milliseconds while still exercising
thousands of distinct interleavings across the example budget.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mmr import local_coin, mmr_agreement
from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.pki import PKI
from repro.sim.adversary import Adversary, ScriptedScheduler, StaticCorruption
from repro.sim.runner import run_protocol, stop_when_all_decided

# One PKI per system size, shared across examples (keys are orthogonal to
# scheduling; regenerating them per example would just slow the sweep).
_PKI_CACHE: dict[int, PKI] = {}


def _pki(n: int) -> PKI:
    if n not in _PKI_CACHE:
        _PKI_CACHE[n] = PKI.create(n, rng=random.Random(9000 + n))
    return _PKI_CACHE[n]


schedules = st.lists(st.integers(0, 2**16), max_size=400)

# Filled by the first f=0 coin example; every other schedule must match.
_EXPECTED_COIN5: set[int] = set()


class TestSharedCoinUnderAllSchedules:
    @given(choices=schedules)
    @settings(max_examples=60, deadline=None)
    def test_liveness_and_agreement_shape(self, choices):
        n, f = 6, 1
        adversary = Adversary(
            scheduler=ScriptedScheduler(choices),
            corruption=StaticCorruption({0}),
        )
        result = run_protocol(
            n, f, lambda ctx: shared_coin(ctx, 0),
            adversary=adversary, pki=_pki(n),
            params=ProtocolParams(n=n, f=f), seed=1,
        )
        # Liveness under any schedule (Lemma 4.11) and well-formed output.
        assert result.live
        assert len(result.returns) == n - f
        assert result.returned_values <= {0, 1}

    @given(choices=schedules)
    @settings(max_examples=30, deadline=None)
    def test_no_failures_coin_is_schedule_independent(self, choices):
        # With f = 0 everyone waits for everyone: the output must be the
        # same bit under EVERY schedule (it is a function of the keys).
        n = 5
        adversary = Adversary(scheduler=ScriptedScheduler(choices))
        result = run_protocol(
            n, 0, lambda ctx: shared_coin(ctx, 0),
            adversary=adversary, pki=_pki(n),
            params=ProtocolParams(n=n, f=0), seed=2,
        )
        assert result.live
        assert len(result.returned_values) == 1
        if not _EXPECTED_COIN5:
            _EXPECTED_COIN5.update(result.returned_values)
        assert result.returned_values == _EXPECTED_COIN5


class TestMMRSafetyUnderAllSchedules:
    @given(choices=schedules)
    @settings(max_examples=40, deadline=None)
    def test_agreement_never_violated(self, choices):
        n, f = 7, 2
        adversary = Adversary(
            scheduler=ScriptedScheduler(choices),
            corruption=StaticCorruption({0, 1}),
        )
        result = run_protocol(
            n, f,
            lambda ctx: mmr_agreement(ctx, ctx.pid % 2, local_coin, max_rounds=6),
            adversary=adversary, pki=_pki(n),
            params=ProtocolParams(n=n, f=f),
            stop_condition=stop_when_all_decided, seed=3,
            max_deliveries=200_000,
        )
        # Safety must hold whether or not this schedule reached decisions
        # within the round budget.
        assert result.agreement
        assert result.decided_values <= {0, 1}
