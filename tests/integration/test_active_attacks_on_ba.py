"""Full Byzantine Agreement under *active* (message-sending) attackers.

The component tests attack the coin and the approver in isolation; these
compose the attacks against the full Algorithm 4 loop across rounds.
"""

from __future__ import annotations

import random

import pytest

from repro.core.agreement import byzantine_agreement
from repro.core.committees import sample
from repro.core.messages import InitMsg, OkMsg
from repro.core.params import ProtocolParams
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.byzantine import ScriptedBehavior
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 60, 4
CORRUPT = {0, 1, 2, 3}


@pytest.fixture(scope="module")
def params():
    return ProtocolParams.simulation_scale(n=N, f=F, safety_sigmas=4.0)


def run_attacked(behavior_factory, params, seed):
    adversary = Adversary(
        scheduler=RandomScheduler(random.Random(seed)),
        corruption=StaticCorruption(CORRUPT),
        behavior_factory=behavior_factory,
    )
    return run_protocol(
        N, F, lambda ctx: byzantine_agreement(ctx, ctx.pid % 2),
        adversary=adversary, params=params,
        stop_condition=stop_when_all_decided, seed=seed,
    )


class TestInitEquivocationAcrossRounds:
    def test_equivocating_every_approver_instance(self, params):
        """Byzantine init members push BOTH values into every approver of
        the first three rounds; safety and liveness must survive."""

        def equivocate(ctx):
            for round_id in range(3):
                for phase in ("est", "prop"):
                    instance = ("ba", round_id, phase)
                    sampled, proof = sample(ctx, instance, "init", params)
                    if sampled:
                        for value in (0, 1, None):
                            ctx.broadcast(
                                InitMsg(instance, value=value, membership=proof)
                            )

        result = run_attacked(
            lambda pid: ScriptedBehavior(on_start=equivocate), params, seed=1
        )
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestOkFloodingAcrossRounds:
    def test_unjustified_ok_flood(self, params):
        """Byzantine ok-committee members flood unjustified oks for ⊥ in
        every instance; the justification check must drop them all."""

        def flood(ctx):
            for round_id in range(3):
                for phase in ("est", "prop"):
                    instance = ("ba", round_id, phase)
                    sampled, proof = sample(ctx, instance, "ok", params)
                    if sampled:
                        ctx.broadcast(
                            OkMsg(instance, value=None, membership=proof,
                                  justification=())
                        )

        result = run_attacked(
            lambda pid: ScriptedBehavior(on_start=flood), params, seed=2
        )
        assert result.live
        assert result.all_correct_decided
        assert result.agreement
        assert result.decided_values <= {0, 1}


class TestCombinedAttack:
    def test_equivocation_plus_flood_plus_unanimity(self, params):
        """Unanimous correct inputs with both attacks running: Validity
        requires the correct value to win regardless."""

        def combined(ctx):
            for round_id in range(2):
                instance = ("ba", round_id, "est")
                sampled, proof = sample(ctx, instance, "init", params)
                if sampled:
                    ctx.broadcast(InitMsg(instance, value=0, membership=proof))
                sampled, proof = sample(ctx, instance, "ok", params)
                if sampled:
                    ctx.broadcast(
                        OkMsg(instance, value=0, membership=proof, justification=())
                    )

        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(3)),
            corruption=StaticCorruption(CORRUPT),
            behavior_factory=lambda pid: ScriptedBehavior(on_start=combined),
        )
        result = run_protocol(
            N, F, lambda ctx: byzantine_agreement(ctx, 1),
            adversary=adversary, params=params,
            stop_condition=stop_when_all_decided, seed=3,
        )
        assert result.live
        assert result.decided_values == {1}
