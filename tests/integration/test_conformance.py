"""The conformance pipeline: trend store, `repro check`/`trends`/`export`
CLI, and the one-line diagnostics for damaged recordings."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import conformance
from repro.experiments.trends import (
    TrendStore,
    bench_json_path,
    record_bench,
    render_trends,
)


class TestTrendStore:
    def test_append_load_history(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench_x", {"words": 100}, ts=1.0)
        store.append("bench_x", {"words": 110}, ts=2.0)
        store.append("bench_y", {"rate": 0.5}, ts=3.0)
        assert store.names() == ["bench_x", "bench_y"]
        history = store.history("bench_x")
        assert [r["payload"]["words"] for r in history] == [100, 110]
        assert store.latest("bench_x")["ts"] == 2.0
        assert store.latest("missing") is None

    def test_empty_store(self, tmp_path):
        store = TrendStore(tmp_path)
        assert store.load() == []
        assert "no trend records" in render_trends(store)

    def test_regressions_beyond_tolerance(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100}, ts=1.0)
        store.append("bench", {"words": 200}, ts=2.0)
        drifts = store.regressions("bench", rel_tol=0.1)
        assert len(drifts) == 1 and "words" in drifts[0]
        assert store.regressions("bench", rel_tol=2.0) == []

    def test_foreign_schema_rejected(self, tmp_path):
        store = TrendStore(tmp_path)
        store.path.write_text('{"schema": "other.thing", "version": 1}\n')
        with pytest.raises(ValueError, match="schema"):
            store.load()

    def test_truncated_journal_diagnosed_with_line_number(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100})
        with store.path.open("a") as handle:
            handle.write('{"schema": "repro.trends", "vers')  # cut mid-write
        with pytest.raises(ValueError, match="line 2"):
            store.load()

    def test_record_bench_writes_snapshot_and_journal(self, tmp_path):
        path, record = record_bench("observability", {"bound": 0.01}, tmp_path)
        assert path == bench_json_path("observability", tmp_path)
        snapshot = json.loads(path.read_text())
        assert snapshot["payload"] == {"bound": 0.01}
        assert snapshot == record
        assert TrendStore(tmp_path).latest("observability") == record

    def test_render_trends_table(self, tmp_path):
        store = TrendStore(tmp_path)
        store.append("bench", {"words": 100}, ts=1.0)
        store.append("bench", {"words": 500}, ts=2.0)
        table = render_trends(store)
        assert "bench" in table
        assert "words" in table  # the drift line names the field


class TestRunCheck:
    def test_clean_sweep_passes(self):
        payload = conformance.run_check(
            protocols=("whp_ba",), n=16, seeds=range(2)
        )
        assert payload["ok"]
        assert payload["safety_violations"] == 0
        entry = payload["protocols"]["whp_ba"]
        assert len(entry["runs"]) == 2
        assert entry["conformance"]["runs"] == 2
        text = conformance.format_check(payload)
        assert "RESULT: OK" in text
        assert "whp_ba" in text
        assert "S1" in text and "rho" in text

    def test_payload_is_json_serializable(self):
        payload = conformance.run_check(protocols=("whp_ba",), n=16, seeds=[0])
        json.dumps(payload)


class TestCheckCLI:
    def test_check_writes_conformance_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["check", "--n", "16", "--seeds", "2", "--protocols", "whp_ba"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "RESULT: OK" in out
        conformance_json = tmp_path / "BENCH_conformance.json"
        assert conformance_json.exists()
        payload = json.loads(conformance_json.read_text())["payload"]
        assert payload["ok"] is True
        assert (tmp_path / "BENCH_trends.jsonl").exists()

    def test_trends_renders_after_check(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        main(["check", "--n", "16", "--seeds", "1", "--protocols", "whp_ba"])
        capsys.readouterr()
        assert main(["trends"]) == 0
        out = capsys.readouterr().out
        assert "conformance" in out
        assert "(first record)" in out

    def test_check_listed(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("check", "trends", "export"):
            assert name in out


class TestExportCLI:
    def test_record_then_export(self, capsys, tmp_path):
        recording = str(tmp_path / "flight.jsonl")
        assert main(["record", "--n", "16", "--seed", "2", "--out", recording]) == 0
        capsys.readouterr()
        assert main(["export", recording]) == 0
        out = capsys.readouterr().out
        assert "exported" in out and "perfetto" in out.lower()
        trace = json.loads((tmp_path / "flight.trace.json").read_text())
        assert trace["traceEvents"]

    def test_export_without_path_rejected(self):
        with pytest.raises(SystemExit):
            main(["export"])


class TestReportDiagnostics:
    """Satellite: damaged recordings exit with one-line diagnostics."""

    def test_missing_recording(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "does_not_exist.jsonl"])
        assert "no such recording" in str(excinfo.value)

    def test_empty_recording(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["report", str(empty)])
        assert "empty file" in str(excinfo.value)

    def test_truncated_line_diagnosed(self, capsys, tmp_path):
        recording = tmp_path / "flight.jsonl"
        assert main(
            ["record", "--n", "16", "--seed", "2", "--out", str(recording)]
        ) == 0
        capsys.readouterr()
        text = recording.read_text()
        recording.write_text(text[: len(text) // 2])  # cut mid-line
        with pytest.raises(SystemExit) as excinfo:
            main(["report", str(recording)])
        message = str(excinfo.value)
        assert "truncated" in message and "line" in message

    def test_missing_footer_diagnosed(self, capsys, tmp_path):
        recording = tmp_path / "flight.jsonl"
        assert main(
            ["record", "--n", "16", "--seed", "2", "--out", str(recording)]
        ) == 0
        capsys.readouterr()
        lines = recording.read_text().splitlines()
        recording.write_text("\n".join(lines[:-1]) + "\n")  # drop the footer
        with pytest.raises(SystemExit) as excinfo:
            main(["report", str(recording)])
        assert "truncated" in str(excinfo.value)

    def test_export_missing_recording(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["export", "nope.jsonl"])
        assert "no such recording" in str(excinfo.value)


class TestEventSchemaVersion:
    def test_unknown_version_descriptive(self):
        from repro.sim.events import event_from_record

        with pytest.raises(ValueError, match="unknown repro.flight schema"):
            event_from_record({"k": "decide"}, version=99)

    def test_versioned_recording_rejected_loudly(self, capsys, tmp_path):
        recording = tmp_path / "flight.jsonl"
        assert main(
            ["record", "--n", "16", "--seed", "2", "--out", str(recording)]
        ) == 0
        capsys.readouterr()
        lines = recording.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        lines[0] = json.dumps(header)
        recording.write_text("\n".join(lines) + "\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["report", str(recording)])
        assert "version" in str(excinfo.value)
