"""The benchmark harness files must parse, and the registry must stay
consistent with the CLI and DESIGN.md's experiment index."""

from __future__ import annotations

import py_compile
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parents[2]
BENCHES = sorted((ROOT / "benchmarks").glob("bench_*.py"))


@pytest.mark.parametrize("path", BENCHES, ids=lambda p: p.stem)
def test_bench_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


def test_every_designed_experiment_has_a_bench():
    ids = {path.stem for path in BENCHES}
    for experiment in ("t1", "f1", "e1", "e1b", "e2", "e3", "e4",
                       "e5", "e6", "e7", "e8", "x1", "x2"):
        assert any(stem.startswith(f"bench_{experiment}_") for stem in ids), experiment


def test_cli_covers_every_experiment():
    from repro.cli import COMMANDS

    for experiment in ("t1", "f1", "e1", "e1b", "e2", "e3", "e4",
                       "e5", "e6", "e7", "e8", "x1", "x2"):
        assert experiment in COMMANDS, experiment


def test_design_md_references_every_bench():
    design = (ROOT / "DESIGN.md").read_text()
    for path in BENCHES:
        if path.stem == "bench_substrate":
            continue  # micro-benchmarks, not a paper artefact
        # DESIGN's index uses either the explicit filename or the id scheme.
        experiment_id = path.stem.split("_")[1]
        assert re.search(
            rf"{path.name}|bench_{experiment_id}_", design
        ), path.name


def test_benches_save_reports():
    for path in BENCHES:
        if path.stem == "bench_substrate":
            continue
        source = path.read_text()
        assert "save_report" in source, path.name
        assert "What must reproduce" in source or "see DESIGN.md" in source, path.name
