"""The README's quickstart snippet must actually run as printed."""

from __future__ import annotations

import re
from pathlib import Path

README = (Path(__file__).parents[2] / "README.md").read_text()


def extract_first_python_block(text: str) -> str:
    match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
    assert match, "README has no python code block"
    return match.group(1)


def test_quickstart_block_executes():
    code = extract_first_python_block(README)
    namespace: dict = {}
    exec(compile(code, "README-quickstart", "exec"), namespace)  # noqa: S102
    result = namespace["result"]
    assert result.live
    assert result.agreement
    assert result.decided_values <= {0, 1}
    assert result.words > 0
    assert result.duration > 0


def test_readme_mentions_all_top_level_packages():
    for package in ("crypto", "sim", "core", "baselines", "analysis", "experiments"):
        assert package in README
