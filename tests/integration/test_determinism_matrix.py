"""Determinism across the scheduler zoo: same (seed, scheduler) ⇒ same run.

Reproducibility is a first-class deliverable of the harness: every
experiment in EXPERIMENTS.md cites seeds, so any nondeterminism leak
(iteration order, unseeded randomness, id()-keyed dicts) would silently
invalidate them.  This matrix pins byte-level run equality per scheduler.
"""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.pki import PKI
from repro.sim.adversary import (
    Adversary,
    ContentAwareMinWithholdScheduler,
    FIFOScheduler,
    PartitionScheduler,
    RandomScheduler,
    ScriptedScheduler,
    StaticCorruption,
    TargetedDelayScheduler,
)
from repro.sim.runner import RunResult, run_protocol

N, F = 10, 2

SCHEDULER_FACTORIES = {
    "random": lambda seed: RandomScheduler(random.Random(seed)),
    "fifo": lambda seed: FIFOScheduler(),
    "targeted": lambda seed: TargetedDelayScheduler({0, 1}, random.Random(seed)),
    "partition": lambda seed: PartitionScheduler({0, 1, 2}, 50, random.Random(seed)),
    "scripted": lambda seed: ScriptedScheduler(
        random.Random(seed).choices(range(1000), k=300)
    ),
    "content-aware": lambda seed: ContentAwareMinWithholdScheduler(random.Random(seed)),
}


def run_once(scheduler_name: str, seed: int) -> RunResult:
    pki = PKI.create(N, rng=random.Random(99))
    adversary = Adversary(
        scheduler=SCHEDULER_FACTORIES[scheduler_name](seed),
        corruption=StaticCorruption({0, 1}),
    )
    return run_protocol(
        N, F, lambda ctx: shared_coin(ctx, 0),
        adversary=adversary, pki=pki, params=ProtocolParams(n=N, f=F), seed=seed,
    )


@pytest.mark.parametrize("name", sorted(SCHEDULER_FACTORIES))
class TestDeterminism:
    def test_identical_runs(self, name):
        a = run_once(name, seed=5)
        b = run_once(name, seed=5)
        assert a.returns == b.returns
        assert a.deliveries == b.deliveries
        assert a.words == b.words
        assert a.metrics.words_by_kind == b.metrics.words_by_kind

    def test_live_under_this_scheduler(self, name):
        result = run_once(name, seed=6)
        assert result.live
        assert len(result.returns) == N - F
