"""End-to-end schedule fuzzing: mutate a recording, find coverage, bundle.

The acceptance path for the fuzzer (DESIGN.md section 13): fuzzing a
recorded byz_split run must discover schedule-coverage the seed replay
cannot reach (a lossy duplicate puts two Nudges in flight for the same
destination -- a ``race:`` signature family no single-delivery schedule
produces), and every violating candidate must come back as a replayable,
minimized ``*.divergence.json`` bundle that ``repro explain``
classifies like any hand-recorded failure.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.fuzzing import format_fuzz, fuzz_recording

BUDGET = 60  # enough for the race family at this seed, small enough for CI


@pytest.fixture(scope="module")
def byz_recording(tmp_path_factory):
    """A recorded byz_split run: known Agreement violation, 6 deliveries."""
    path = tmp_path_factory.mktemp("fuzz") / "byz.jsonl"
    code = main([
        "record", "--protocol", "byz_split", "--n", "6", "--seed", "0",
        "--no-telemetry", "--no-profile", "--out", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def fuzz_payload(byz_recording):
    return fuzz_recording(
        byz_recording,
        budget=BUDGET,
        seed=1,
        atlas_root=byz_recording.parent,
        out=str(byz_recording.parent / "byz.fuzz"),
    )


class TestFuzzRecording:
    def test_baseline_violation_does_not_fail_the_gate(self, fuzz_payload):
        # byz_split's own Agreement violation is the recording's baseline;
        # re-finding it is expected, not a gate failure.
        assert fuzz_payload["baseline_violations"] == ["safety/Agreement"]
        assert fuzz_payload["new_violations"] == []
        assert fuzz_payload["ok"] is True

    def test_discovers_a_new_signature_family(self, fuzz_payload):
        # The acceptance criterion: coverage the seed schedule cannot
        # reach.  A lossy duplicate races two Nudges to one destination.
        novelty = fuzz_payload["novelty"]
        assert novelty["new_signatures"] >= 1
        assert "race" in novelty["new_families"]
        assert novelty["corpus_size"] >= 2

    def test_candidate_accounting_adds_up(self, fuzz_payload):
        assert (
            fuzz_payload["realizable"]
            + fuzz_payload["unrealizable"]
            + fuzz_payload["skipped"]
            == BUDGET
        )
        tried = sum(
            stats["tried"] for stats in fuzz_payload["mutations"].values()
        )
        assert tried == BUDGET - fuzz_payload["skipped"]

    def test_counterexample_bundle_is_complete(self, byz_recording, fuzz_payload):
        bundles = fuzz_payload["counterexamples"]
        assert bundles, "fuzzing a broken scenario must bundle its violation"
        bundle = bundles[0]
        assert bundle["monitor"] == "safety"
        assert bundle["property"] == "Agreement"
        recording = byz_recording.parent / bundle["recording"]
        divergence = byz_recording.parent / bundle["divergence"]
        assert recording.exists() and divergence.exists()
        payload = json.loads(divergence.read_text())
        assert payload["kind"] == "explain"
        assert payload["source"] == "fuzz"
        # The candidate recipe rides along so the run is reconstructable.
        assert payload["candidate"]["mutation"] == bundle["mutation"]
        assert bundle["minimized_deliveries"] is not None
        assert bundle["minimized_deliveries"] <= fuzz_payload["deliveries"]

    def test_bundle_replays_under_repro_explain(
        self, byz_recording, fuzz_payload, capsys, monkeypatch
    ):
        bundle = fuzz_payload["counterexamples"][0]
        monkeypatch.chdir(byz_recording.parent)
        assert main(["explain", bundle["recording"]]) == 1
        out = capsys.readouterr().out
        # repro explain classifies the bundled failure.  A plain-schedule
        # candidate replays event-identically; a lossy/corruption-moved
        # one needs its embedded candidate recipe for that, so a bare
        # explain reports the (expected) divergence instead.
        assert "failure [violation]" in out
        plain = (
            fuzz_payload["counterexamples"][0]["mutation"]
            in ("swap_adjacent", "swap_random", "delay_delivery",
                "drop_delivery")
        )
        if plain:
            assert "replay: event log identical" in out
        else:
            assert "replay:" in out

    def test_corpus_file_round_trips(self, byz_recording, fuzz_payload):
        corpus = json.loads(
            (byz_recording.parent / fuzz_payload["corpus_file"]).read_text()
        )
        assert corpus["kind"] == "fuzz_corpus"
        assert len(corpus["entries"]) == fuzz_payload["novelty"]["corpus_size"]
        assert corpus["entries"][0]["mutation"] == "seed"
        # Every non-seed entry earned its place with new signatures.
        assert all(entry["new_signatures"] for entry in corpus["entries"][1:])

    def test_atlas_remembers_across_invocations(self, byz_recording, fuzz_payload):
        # A second campaign over the same recording sees the first one's
        # coverage in the atlas: the race family is no longer novel.
        again = fuzz_recording(
            byz_recording,
            budget=BUDGET,
            seed=1,
            atlas_root=byz_recording.parent,
            out=str(byz_recording.parent / "byz2.fuzz"),
        )
        assert again["novelty"]["atlas_known_before"] > 0
        assert "race" not in again["novelty"]["new_families"]

    def test_format_fuzz_renders_the_summary(self, fuzz_payload):
        text = format_fuzz(fuzz_payload)
        assert "baseline violations: safety/Agreement" in text
        assert "new families: race" in text
        assert "counterexample [safety/Agreement]" in text
        assert text.endswith("ok")

    def test_bench_record_written(self, byz_recording, fuzz_payload):
        bench = json.loads(
            (byz_recording.parent / "BENCH_fuzzing.json").read_text()
        )
        assert bench["name"] == "fuzzing"
        assert bench["payload"]["budget"] == BUDGET
        assert "realizable" in bench["payload"]["novelty"]


class TestFuzzCLI:
    def test_cli_exit_zero_and_summary(self, byz_recording, capsys, monkeypatch):
        monkeypatch.chdir(byz_recording.parent)
        assert main([
            "fuzz", str(byz_recording), "--budget", "20", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "mutation yield" in out
        assert out.strip().endswith("ok")

    def test_cli_requires_a_recording(self):
        with pytest.raises(SystemExit, match="usage"):
            main(["fuzz"])

    def test_clean_recording_fuzzes_ok(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "whp.jsonl"
        assert main([
            "record", "--n", "8", "--seed", "3",
            "--no-telemetry", "--no-profile", "--out", str(path),
        ]) == 0
        capsys.readouterr()
        monkeypatch.chdir(tmp_path)
        assert main(["fuzz", str(path), "--budget", "10"]) == 0
        out = capsys.readouterr().out
        assert "baseline violations: none" in out
