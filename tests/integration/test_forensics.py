"""End-to-end divergence forensics: record, diff, explain, minimize.

This is the acceptance test for the forensics layer: a recorded
Byzantine-split agreement violation must shrink to its minimal schedule
under seq-exact replay, and a single-event mutation between two
recordings must be localized to the exact first divergent seq with a
bounded causal slice -- all through the same ``python -m repro``
surface a user would drive.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.cli import main
from repro.experiments.forensics import explain_recording, resolve_protocol
from repro.sim.flightrecorder import Recording, load_recording


@pytest.fixture(scope="module")
def byz_recording(tmp_path_factory):
    """A recorded byz_split run (n=4, one Byzantine nudger)."""
    path = tmp_path_factory.mktemp("byz") / "byz.jsonl"
    code = main([
        "record", "--protocol", "byz_split", "--n", "4", "--seed", "11",
        "--no-telemetry", "--no-profile", "--out", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def whp_recording(tmp_path_factory):
    """A clean whp_ba run for the diff and no-failure paths."""
    path = tmp_path_factory.mktemp("whp") / "whp.jsonl"
    code = main([
        "record", "--n", "8", "--seed", "3",
        "--no-telemetry", "--no-profile", "--out", str(path),
    ])
    assert code == 0
    return path


def mutate_first_deliver(src, dst) -> int:
    """Copy ``src`` changing the first deliver's words; return its seq."""
    lines = src.read_text().splitlines()
    for position, line in enumerate(lines):
        record = json.loads(line)
        if record.get("k") == "deliver":
            seq = record["seq"]
            record["words"] += 7
            lines[position] = json.dumps(record)
            dst.write_text("\n".join(lines) + "\n")
            return seq
    raise AssertionError("recording has no deliver events")


class TestExplain:
    def test_explain_shrinks_byz_split_to_minimal_schedule(
        self, byz_recording, capsys, monkeypatch
    ):
        monkeypatch.chdir(byz_recording.parent)
        assert main(["explain", str(byz_recording)]) == 1
        out = capsys.readouterr().out
        # The replayed violation, named.
        assert "failure [violation]" in out
        assert "decided 0" in out and "decided 1" in out
        # Seq-exact replay reproduced the recording bit for bit.
        assert "replay: event log identical" in out
        # The minimal schedule: both nudge deliveries, nothing else.
        assert "minimized" in out
        assert "2 essential" in out
        assert "minimal schedule" in out
        # The report sidecar was written for the dashboard/CI.
        sidecar = byz_recording.with_name(
            byz_recording.name.removesuffix(".jsonl") + ".divergence.json"
        )
        assert sidecar.exists()
        payload = json.loads(sidecar.read_text())
        assert payload["kind"] == "explain"
        assert payload["minimized"]["deliveries"] == 2

    def test_explain_api_payload(self, byz_recording):
        payload = explain_recording(byz_recording)
        assert payload["protocol"] == "byz_split"
        assert payload["replay_identical"] is True
        assert payload["failure"]["type"] == "violation"
        assert payload["failure"]["severity"] == "safety"
        # Minimal schedule: one nudge to an even pid, one to an odd pid
        # (the split needs deciders of both parities).
        minimized = payload["minimized"]
        assert minimized["deliveries"] == 2
        dests = {dest for _, dest in minimized["order"]}
        assert {dest % 2 for dest in dests} == {0, 1}
        # Slice stays within the acceptance bound.
        assert payload["slice"] is None or len(payload["slice"]) <= 20

    def test_clean_recording_explains_to_exit_zero(
        self, whp_recording, capsys
    ):
        assert main(["explain", str(whp_recording)]) == 0
        out = capsys.readouterr().out
        assert "no failure" in out
        assert "replay: event log identical" in out

    def test_headerless_recording_needs_explicit_protocol(self, tmp_path):
        src = load_recording.__module__  # silence unused-import linters
        assert src
        recording = Recording(header={"n": 4}, events=(), summary={})
        with pytest.raises(ValueError, match="--protocol"):
            resolve_protocol(recording)


class TestDiffCLI:
    def test_identical_recordings_exit_zero(
        self, whp_recording, tmp_path, capsys
    ):
        copy = tmp_path / "copy.jsonl"
        shutil.copy(whp_recording, copy)
        assert main(["diff", str(whp_recording), str(copy)]) == 0
        assert "recordings identical" in capsys.readouterr().out

    def test_single_event_mutation_localized_to_seq(
        self, whp_recording, tmp_path, capsys
    ):
        mutant = tmp_path / "mutant.jsonl"
        seq = mutate_first_deliver(whp_recording, mutant)
        out_json = tmp_path / "whp.divergence.json"
        code = main([
            "diff", str(whp_recording), str(mutant), "--out", str(out_json),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert f"seq {seq}" in out
        assert "words" in out
        assert "<-- DIVERGES" in out
        # Content divergence, not a schedule divergence.
        assert "schedules agree" in out
        payload = json.loads(out_json.read_text())
        assert payload["kind"] == "diff"
        assert payload["seq"] == seq
        assert 1 <= len(payload["slice"]) <= 20
        # The Perfetto sidecar for the slice.
        trace = tmp_path / "whp.divergence.trace.json"
        assert trace.exists()
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(record.get("name") == "DIVERGENCE" for record in events)

    def test_missing_operand_rejected(self, whp_recording):
        with pytest.raises(SystemExit, match="usage"):
            main(["diff", str(whp_recording)])


class TestDashboardPanel:
    def test_dashboard_renders_newest_divergence_report(
        self, whp_recording, tmp_path, capsys
    ):
        from repro.experiments.dashboard import render_dashboard

        mutant = tmp_path / "mutant.jsonl"
        mutate_first_deliver(whp_recording, mutant)
        assert main([
            "diff", str(whp_recording), str(mutant),
            "--out", str(tmp_path / "run.divergence.json"),
        ]) == 1
        capsys.readouterr()
        out, diagnostics = render_dashboard(tmp_path / "d.html", root=tmp_path)
        html = out.read_text()
        assert "Divergence forensics" in html
        assert "diverges" in html
        assert not any("divergence" in diag for diag in diagnostics)

    def test_dashboard_degrades_without_reports(self, tmp_path):
        from repro.experiments.dashboard import render_dashboard

        out, diagnostics = render_dashboard(tmp_path / "d.html", root=tmp_path)
        assert any("divergence" in diag for diag in diagnostics)
