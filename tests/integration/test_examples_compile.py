"""Examples must at least parse and compile on every change.

(Executing them is covered by docs/CI instructions; at test time we keep
this cheap -- full runs take ~minutes on one core.)
"""

from __future__ import annotations

import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "committee_sampling",
        "adversarial_schedules",
        "protocol_comparison",
        "permissioned_ledger",
        "tracing_a_run",
        "multivalued_consensus",
    } <= names


def test_examples_have_docstrings_and_main():
    for path in EXAMPLES:
        source = path.read_text()
        assert source.lstrip().startswith(('#!/usr/bin/env python3\n"""', '"""')), path
        assert '__main__' in source, path
