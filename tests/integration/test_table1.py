"""A miniature of the paper's Table 1: every protocol row, one simulator.

Each protocol runs at its own resilience operating point with split inputs
and silent Byzantine faults; all must be safe and live, and the word
ordering of the quadratic-vs-subquadratic comparison is checked at a scale
where committees are thin enough to win.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    benor_agreement,
    bracha_agreement,
    cachin_agreement,
    local_coin,
    make_shared_coin,
    mmr_agreement,
    rabin_agreement,
)
from repro.core.agreement import byzantine_agreement
from repro.core.params import ProtocolParams
from repro.crypto.threshold import RabinLotteryDealer, ThresholdCoinDealer
from repro.sim.runner import run_protocol, stop_when_all_decided


def _row_configs():
    """(name, n, f, protocol factory builder) per Table 1 row."""
    configs = []

    configs.append(("benor", 21, 3, lambda n, f: (
        lambda ctx: benor_agreement(ctx, ctx.pid % 2)
    )))
    configs.append(("bracha", 13, 2, lambda n, f: (
        lambda ctx: bracha_agreement(ctx, ctx.pid % 2)
    )))

    def rabin_builder(n, f):
        dealer = RabinLotteryDealer(n, f + 1, random.Random(1))
        return lambda ctx: rabin_agreement(ctx, ctx.pid % 2, dealer)

    configs.append(("rabin", 22, 2, rabin_builder))

    def cachin_builder(n, f):
        dealer = ThresholdCoinDealer(n, f + 1, random.Random(2))
        return lambda ctx: cachin_agreement(ctx, ctx.pid % 2, dealer)

    configs.append(("cachin", 13, 3, cachin_builder))
    configs.append(("mmr", 13, 3, lambda n, f: (
        lambda ctx: mmr_agreement(ctx, ctx.pid % 2, local_coin)
    )))
    configs.append(("mmr+alg1", 13, 3, lambda n, f: (
        lambda ctx: mmr_agreement(ctx, ctx.pid % 2, make_shared_coin())
    )))
    return configs


@pytest.mark.parametrize("name,n,f,builder", _row_configs())
def test_every_row_safe_and_live(name, n, f, builder):
    params = ProtocolParams(n=n, f=f)
    for seed in range(2):
        result = run_protocol(
            n, f, builder(n, f), corrupt=set(range(f)), params=params,
            stop_condition=stop_when_all_decided, seed=seed,
        )
        assert result.live, name
        assert result.all_correct_decided, name
        assert result.agreement, name
        assert result.decided_values <= {0, 1}, name


def test_our_row_safe_and_live():
    params = ProtocolParams.simulation_scale(n=60, f=4, lam=45)
    result = run_protocol(
        60, 4, lambda ctx: byzantine_agreement(ctx, ctx.pid % 2),
        corrupt={0, 1, 2, 3}, params=params,
        stop_condition=stop_when_all_decided, seed=0,
    )
    assert result.live
    assert result.all_correct_decided
    assert result.agreement


def test_message_count_ordering_at_200():
    """Ours sends asymptotically fewer messages: already visible at n=200
    for one coin instance versus one all-to-all coin instance."""
    from repro.core.shared_coin import shared_coin
    from repro.core.whp_coin import whp_coin

    n, f = 200, 2
    thin = ProtocolParams.simulation_scale(n=n, f=f)
    committee = run_protocol(
        n, f, lambda ctx: whp_coin(ctx, 0), corrupt={0, 1}, params=thin, seed=1,
    )
    full = run_protocol(
        n, f, lambda ctx: shared_coin(ctx, 0), corrupt={0, 1}, params=thin, seed=1,
    )
    assert committee.live and full.live
    assert (
        committee.metrics.messages_sent_correct
        < full.metrics.messages_sent_correct / 2
    )
