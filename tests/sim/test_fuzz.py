"""Fuzzing mechanism layer: candidates, typed mutations, corruption moves.

Pin the algebra the fuzz driver builds on: mutations are deterministic
functions of their RNG, schedule mutations preserve the delivery
multiset invariants they claim, lossy mutations never build an invalid
config, and :class:`ScheduledCorruption` fires at the exact delivery
counts it was given.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.fuzz import (
    MUTATIONS,
    FuzzCandidate,
    MutationContext,
    ScheduledCorruption,
    mutate,
)
from repro.sim.network import LossyLinkConfig

ORDER = ((0, 1), (1, 2), (2, 0), (0, 2), (1, 0), (2, 1))
SEQS = (0, 1, 2, 3, 4, 5)


def seed_candidate(**overrides) -> FuzzCandidate:
    return FuzzCandidate(order=ORDER, seqs=SEQS, **overrides)


def ctx(corrupted=(2,)) -> MutationContext:
    return MutationContext(corrupted=tuple(corrupted), deliveries=len(ORDER))


class TestCandidate:
    def test_dict_round_trip(self):
        candidate = seed_candidate(
            lossy=LossyLinkConfig(duplicate_rate=0.3),
            corrupt_after=((2, 4),),
            explore_seed=99,
            mutation="lossy_explore",
            parent=3,
        )
        assert FuzzCandidate.from_dict(candidate.to_dict()) == candidate

    def test_plain_round_trip(self):
        candidate = seed_candidate()
        restored = FuzzCandidate.from_dict(candidate.to_dict())
        assert restored == candidate
        assert restored.lossy is None
        assert restored.corrupt_after is None


class TestScheduleMutations:
    def test_swaps_preserve_delivery_multiset(self):
        for name in ("swap_adjacent", "swap_random", "delay_delivery"):
            mutated = MUTATIONS[name](seed_candidate(), random.Random(1), ctx())
            assert mutated is not None, name
            assert sorted(zip(mutated.order, mutated.seqs)) == sorted(
                zip(ORDER, SEQS)
            ), name
            # seqs travel with their links: the pairing is preserved.
            assert dict(zip(mutated.seqs, mutated.order)) == dict(
                zip(SEQS, ORDER)
            ), name

    def test_drop_removes_exactly_one(self):
        mutated = MUTATIONS["drop_delivery"](
            seed_candidate(), random.Random(1), ctx()
        )
        assert len(mutated.order) == len(ORDER) - 1
        assert len(mutated.seqs) == len(SEQS) - 1
        assert set(zip(mutated.order, mutated.seqs)) < set(zip(ORDER, SEQS))

    def test_move_corruption_needs_a_corrupted_pid(self):
        assert (
            MUTATIONS["move_corruption"](
                seed_candidate(), random.Random(1), ctx(corrupted=())
            )
            is None
        )
        mutated = MUTATIONS["move_corruption"](
            seed_candidate(), random.Random(1), ctx(corrupted=(2,))
        )
        assert mutated.corrupt_after is not None
        assert [pid for pid, _ in mutated.corrupt_after] == [2]


class TestLossyMutations:
    def test_lossy_mutations_build_valid_configs(self):
        for name in ("lossy_duplicate", "lossy_corrupt", "lossy_explore"):
            for seed in range(20):
                mutated = MUTATIONS[name](
                    seed_candidate(), random.Random(seed), ctx()
                )
                if mutated is None:
                    continue
                config = mutated.lossy
                # Constructing LossyLinkConfig validates; re-validate sums.
                total = (
                    config.drop_rate + config.duplicate_rate
                    + config.reorder_rate + config.corrupt_rate
                )
                assert 0.0 < total <= 1.0 + 1e-9, name

    def test_lossy_explore_switches_to_random_schedule(self):
        mutated = MUTATIONS["lossy_explore"](
            seed_candidate(), random.Random(3), ctx()
        )
        assert mutated.explore_seed is not None
        assert mutated.lossy.active

    def test_lossy_perturb_needs_existing_config(self):
        assert (
            MUTATIONS["lossy_perturb"](
                seed_candidate(), random.Random(1), ctx()
            )
            is None
        )
        base = seed_candidate(lossy=LossyLinkConfig(duplicate_rate=0.4))
        mutated = MUTATIONS["lossy_perturb"](base, random.Random(1), ctx())
        assert mutated is not None
        assert mutated.lossy != base.lossy

    def test_duplicate_rate_saturates_to_none(self):
        # A config already at the exclusivity ceiling cannot absorb a
        # further duplicate bump: the mutation declines rather than
        # building an invalid config.
        base = seed_candidate(
            lossy=LossyLinkConfig(drop_rate=0.5, duplicate_rate=0.5)
        )
        assert (
            MUTATIONS["lossy_duplicate"](base, random.Random(1), ctx()) is None
        )


class TestMutateDispatch:
    def test_deterministic_given_rng(self):
        a = mutate(seed_candidate(), random.Random(7), ctx())
        b = mutate(seed_candidate(), random.Random(7), ctx())
        assert a == b

    def test_stamps_mutation_name(self):
        mutated = mutate(seed_candidate(), random.Random(7), ctx())
        assert mutated is not None
        assert mutated.mutation in MUTATIONS
        assert mutated != seed_candidate()

    def test_restricted_names(self):
        mutated = mutate(
            seed_candidate(), random.Random(7), ctx(), names=["swap_adjacent"]
        )
        assert mutated.mutation == "swap_adjacent"

    def test_exhausted_attempts_return_none(self):
        # Only inapplicable mutations offered -> every attempt misfires.
        assert (
            mutate(
                seed_candidate(),
                random.Random(7),
                ctx(corrupted=()),
                names=["move_corruption", "lossy_perturb"],
            )
            is None
        )


class TestScheduledCorruption:
    def test_initial_sites_fire_before_any_delivery(self):
        strategy = ScheduledCorruption([(1, 0), (3, 2)])
        assert strategy.initial_corruptions(n=4, f=2) == {1}

    def test_fires_at_the_given_delivery_count(self):
        strategy = ScheduledCorruption([(3, 2)])
        assert strategy.on_delivery(None, frozenset()) == set()   # seen=1
        assert strategy.on_delivery(None, frozenset()) == {3}     # seen=2

    def test_never_recorrupts(self):
        strategy = ScheduledCorruption([(3, 1)])
        assert strategy.on_delivery(None, frozenset({3})) == set()
