"""ProcessContext unit behaviour (rng, keys, notes, broadcast fan-out)."""

from __future__ import annotations

import random

from repro.crypto.pki import PKI
from repro.sim.adversary import Adversary, RandomScheduler
from repro.sim.network import Simulation


def make_contexts(n=4, seed=5):
    pki = PKI.create(n, rng=random.Random(seed))
    sim = Simulation(
        n=n, f=0, pki=pki,
        adversary=Adversary(scheduler=RandomScheduler(random.Random(seed))),
        seed=seed,
    )
    return sim


class TestRandomness:
    def test_per_process_rngs_are_independent(self):
        sim = make_contexts()
        streams = [
            [ctx.rng.getrandbits(8) for _ in range(8)] for ctx in sim.contexts
        ]
        assert len({tuple(stream) for stream in streams}) == sim.n

    def test_rng_reproducible_across_simulations(self):
        a = make_contexts(seed=9).contexts[2].rng.getrandbits(32)
        b = make_contexts(seed=9).contexts[2].rng.getrandbits(32)
        assert a == b

    def test_rng_differs_across_seeds(self):
        a = make_contexts(seed=9).contexts[2].rng.getrandbits(32)
        b = make_contexts(seed=10).contexts[2].rng.getrandbits(32)
        assert a != b


class TestKeys:
    def test_vrf_uses_own_key(self):
        sim = make_contexts()
        output = sim.contexts[1].vrf(b"alpha")
        assert sim.contexts[0].verify_vrf(1, b"alpha", output)
        assert not sim.contexts[0].verify_vrf(2, b"alpha", output)

    def test_sign_uses_own_key(self):
        sim = make_contexts()
        signature = sim.contexts[3].sign(b"msg")
        assert sim.contexts[0].verify_signature(3, b"msg", signature)
        assert not sim.contexts[0].verify_signature(1, b"msg", signature)


class TestBroadcast:
    def test_broadcast_reaches_every_pid_including_self(self):
        sim = make_contexts()
        from repro.sim.messages import Message

        sim.contexts[0].broadcast(Message(instance="b"))
        dests = sorted(env.dest for env in sim._in_flight.values())
        assert dests == list(range(sim.n))

    def test_environment_properties(self):
        sim = make_contexts()
        ctx = sim.contexts[0]
        assert ctx.n == sim.n
        assert ctx.pki is sim.pki
        assert ctx.params is None  # none installed in this fixture


class TestNotes:
    def test_notes_snapshot_into_run_result(self):
        from repro.sim.process import Wait
        from repro.sim.runner import RunResult

        sim = make_contexts()

        def noter(ctx):
            ctx.notes["flavour"] = f"p{ctx.pid}"
            return None
            yield

        sim.set_protocol_all(noter)
        sim.run()
        result = RunResult.of(sim)
        assert result.notes[2]["flavour"] == "p2"
        assert len(result.notes) == sim.n
