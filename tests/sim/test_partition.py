"""PartitionScheduler: finite partitions must not break asynchronous
protocols -- they stall the minority side and heal."""

from __future__ import annotations

import random

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.baselines.mmr import local_coin, mmr_agreement
from repro.sim.adversary import Adversary, PartitionScheduler, StaticCorruption
from repro.sim.runner import run_protocol, stop_when_all_decided


def partition_adversary(group_a, heal_after, seed, corrupt=frozenset()):
    return Adversary(
        scheduler=PartitionScheduler(group_a, heal_after, random.Random(seed)),
        corruption=StaticCorruption(corrupt),
    )


class TestSharedCoinUnderPartition:
    def test_coin_survives_majority_minority_split(self):
        n, f = 12, 2
        result = run_protocol(
            n, f, lambda ctx: shared_coin(ctx, 0),
            adversary=partition_adversary(set(range(4)), heal_after=150, seed=1),
            params=ProtocolParams(n=n, f=f), seed=1,
        )
        assert result.live
        assert len(result.returned_values) == 1

    def test_partition_never_drops_messages(self):
        n = 8
        result = run_protocol(
            n, 0, lambda ctx: shared_coin(ctx, 0),
            adversary=partition_adversary(set(range(4)), heal_after=60, seed=2),
            params=ProtocolParams(n=n, f=0), seed=2,
        )
        assert result.live
        assert result.metrics.messages_delivered == result.metrics.messages_sent_total


class TestAgreementUnderPartition:
    def test_mmr_decides_after_heal(self):
        n, f = 13, 2
        result = run_protocol(
            n, f, lambda ctx: mmr_agreement(ctx, ctx.pid % 2, local_coin),
            adversary=partition_adversary(
                set(range(6)), heal_after=400, seed=3, corrupt={0, 1}
            ),
            params=ProtocolParams(n=n, f=f),
            stop_condition=stop_when_all_decided, seed=3,
        )
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestHealSemantics:
    def test_heal_counter(self):
        scheduler = PartitionScheduler({0}, heal_after=2, rng=random.Random(4))
        assert not scheduler.healed
        scheduler.on_delivered(998)
        assert not scheduler.healed
        scheduler.on_delivered(999)
        assert scheduler.healed

    def test_zero_threshold_is_never_partitioned(self):
        scheduler = PartitionScheduler({0}, heal_after=0, rng=random.Random(5))
        assert scheduler.healed
