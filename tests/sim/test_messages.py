"""Message/envelope basics and the metadata view."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.messages import Envelope, EnvelopeView, Message


@dataclass
class Payload(Message):
    secret: int = 0

    def words(self) -> int:
        return 3


class TestMessage:
    def test_default_word_size_is_one(self):
        assert Message(instance="x").words() == 1

    def test_subclass_word_size(self):
        assert Payload(instance="x", secret=5).words() == 3


class TestEnvelope:
    def test_instance_proxies_payload(self):
        env = Envelope(
            seq=1,
            sender=0,
            dest=2,
            payload=Payload(instance=("round", 1), secret=9),
            depth=4,
            sender_correct=True,
            sent_step=0,
        )
        assert env.instance == ("round", 1)

    def test_view_exposes_metadata_only(self):
        env = Envelope(
            seq=7,
            sender=1,
            dest=3,
            payload=Payload(instance="i", secret=42),
            depth=2,
            sender_correct=True,
            sent_step=0,
        )
        view = EnvelopeView.of(env)
        assert view.seq == 7
        assert view.sender == 1
        assert view.dest == 3
        assert view.instance == "i"
        assert view.kind == "Payload"
        assert view.depth == 2
        assert not hasattr(view, "payload")
        assert not hasattr(view, "secret")
