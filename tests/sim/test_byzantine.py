"""Byzantine behaviour plumbing: hooks, corruption-time semantics."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.pki import PKI
from repro.sim.adversary import (
    AdaptiveFirstSpeakersCorruption,
    Adversary,
    FIFOScheduler,
    RandomScheduler,
    StaticCorruption,
)
from repro.sim.byzantine import CrashBehavior, ScriptedBehavior, SilentBehavior
from repro.sim.messages import Message
from repro.sim.network import Simulation
from repro.sim.process import Wait


@dataclass
class Note(Message):
    body: str = ""

    def words(self) -> int:
        return 1


def collector(ctx):
    ctx.broadcast(Note("n", body=f"from-{ctx.pid}"))
    seen = {}
    cursor = 0

    def condition(mailbox):
        nonlocal cursor
        stream = mailbox.stream("n")
        while cursor < len(stream):
            sender, msg = stream[cursor]
            cursor += 1
            seen.setdefault(sender, msg.body)
        if len(seen) >= ctx.n - ctx._simulation.f:
            return dict(seen)
        return None

    return (yield Wait(condition))


def build(n, f, corrupt, behavior_factory=None, corruption=None, seed=0):
    pki = PKI.create(n, rng=random.Random(seed))
    adversary = Adversary(
        scheduler=RandomScheduler(random.Random(seed)),
        corruption=corruption or StaticCorruption(corrupt),
        behavior_factory=behavior_factory or (lambda pid: SilentBehavior()),
    )
    sim = Simulation(n=n, f=f, pki=pki, adversary=adversary, seed=seed)
    sim.set_protocol_all(collector)
    return sim


class TestSilentAndCrash:
    def test_silent_sends_nothing(self):
        sim = build(5, 1, {0}).run()
        for pid in sim.correct_pids:
            assert "from-0" not in sim.returns[pid].values()

    def test_crash_is_silent(self):
        sim = build(5, 1, {0}, behavior_factory=lambda pid: CrashBehavior()).run()
        assert sim.metrics.messages_sent_total == 4 * 5


class TestScriptedHooks:
    def test_on_start_and_on_deliver_called(self):
        calls = {"start": 0, "deliver": 0}

        def factory(pid):
            return ScriptedBehavior(
                on_start=lambda ctx: calls.__setitem__("start", calls["start"] + 1),
                on_deliver=lambda ctx, env: calls.__setitem__(
                    "deliver", calls["deliver"] + 1
                ),
            )

        sim = build(4, 1, {0}, behavior_factory=factory).run()
        assert calls["start"] == 1
        # Exactly the messages addressed to pid 0: one from each of the
        # 3 correct senders (the behaviour itself sends nothing).
        assert calls["deliver"] == 3
        assert sim.corrupted == {0}

    def test_on_corrupt_called_for_adaptive(self):
        corrupted_ctx_pids = []

        def factory(pid):
            return ScriptedBehavior(
                on_corrupt=lambda ctx: corrupted_ctx_pids.append(ctx.pid)
            )

        pki = PKI.create(4, rng=random.Random(3))
        adversary = Adversary(
            scheduler=FIFOScheduler(),
            corruption=AdaptiveFirstSpeakersCorruption(),
            behavior_factory=factory,
        )
        sim = Simulation(n=4, f=1, pki=pki, adversary=adversary, seed=3)
        sim.set_protocol_all(collector)
        sim.run()
        assert corrupted_ctx_pids == sorted(sim.corrupted)

    def test_behavior_can_use_victims_keys(self):
        """After corruption the behaviour holds the process's context and
        can sign with its keys -- the adversary's 'full access'."""
        signatures = []

        def factory(pid):
            return ScriptedBehavior(
                on_start=lambda ctx: signatures.append(ctx.sign(b"stolen"))
            )

        sim = build(4, 1, {2}, behavior_factory=factory).run()
        assert signatures
        assert sim.pki.signature_verify(2, b"stolen", signatures[0])
