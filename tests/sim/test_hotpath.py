"""Kernel hot-path behaviour: verify cache, keyed wakeups, and the
termination-reporting fixes that shipped with them.

Regression targets:

* ``exhausted`` misreported when the stop condition became true on
  exactly the ``max_deliveries``-th delivery;
* ``Mailbox.stream`` permanently allocating a buffer for every probed
  instance;
* ``SchedulerPool`` raising bare built-in errors on an empty pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.crypto.pki import PKI
from repro.crypto.vrf import VRFOutput
from repro.sim.adversary import (
    Adversary,
    FIFOScheduler,
    RandomScheduler,
    StaticCorruption,
)
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.network import EmptySchedulerPoolError, SchedulerPool, Simulation
from repro.sim.process import Wait


@dataclass
class Ping(Message):
    payload: int = 0

    def words(self) -> int:
        return 1


def make_sim(n=1, f=0, seed=0, scheduler=None, **kwargs):
    pki = PKI.create(n, rng=random.Random(seed))
    adversary = Adversary(
        scheduler=scheduler or FIFOScheduler(),
        corruption=StaticCorruption(set()),
    )
    return Simulation(n=n, f=f, pki=pki, adversary=adversary, seed=seed, **kwargs)


class TestVerifyCache:
    def make_pki(self, n=3, **kwargs):
        return PKI.create(n, rng=random.Random(7), **kwargs)

    def test_vrf_hit_on_repeat(self):
        pki = self.make_pki()
        output = pki.vrf_scheme.prove(pki.vrf_private(0), b"alpha")
        assert pki.vrf_verify(0, b"alpha", output)
        assert pki.vrf_verify(0, b"alpha", output)
        verifs, hits, _, _ = pki.verification_counters()
        assert (verifs, hits) == (2, 1)

    def test_negative_verdicts_are_cached(self):
        pki = self.make_pki()
        forged = VRFOutput(value=123, proof=b"\x00" * 32)
        assert not pki.vrf_verify(0, b"alpha", forged)
        assert not pki.vrf_verify(0, b"alpha", forged)
        _, hits, _, _ = pki.verification_counters()
        assert hits == 1

    def test_cache_keyed_by_process_and_alpha(self):
        pki = self.make_pki()
        output = pki.vrf_scheme.prove(pki.vrf_private(0), b"alpha")
        assert pki.vrf_verify(0, b"alpha", output)
        # Same output against another pid / alpha: distinct entries, and
        # distinct (correct) verdicts.
        assert not pki.vrf_verify(1, b"alpha", output)
        assert not pki.vrf_verify(0, b"beta", output)
        _, hits, _, _ = pki.verification_counters()
        assert hits == 0

    def test_signature_hit_on_repeat(self):
        pki = self.make_pki()
        signature = pki.signature_scheme.sign(pki.signature_private(1), b"msg")
        assert pki.signature_verify(1, b"msg", signature)
        assert pki.signature_verify(1, b"msg", signature)
        _, _, sig_verifs, sig_hits = pki.verification_counters()
        assert (sig_verifs, sig_hits) == (2, 1)

    def test_disabled_cache_never_hits(self):
        pki = self.make_pki(verify_cache=False)
        output = pki.vrf_scheme.prove(pki.vrf_private(0), b"alpha")
        assert pki.vrf_verify(0, b"alpha", output)
        assert pki.vrf_verify(0, b"alpha", output)
        verifs, hits, _, _ = pki.verification_counters()
        assert (verifs, hits) == (2, 0)

    def test_set_verify_cache_toggles_and_clears(self):
        pki = self.make_pki()
        output = pki.vrf_scheme.prove(pki.vrf_private(0), b"alpha")
        assert pki.vrf_verify(0, b"alpha", output)
        pki.set_verify_cache(False)
        assert pki.vrf_verify(0, b"alpha", output)
        _, hits, _, _ = pki.verification_counters()
        assert hits == 0
        pki.set_verify_cache(True)
        assert pki.vrf_verify(0, b"alpha", output)
        assert pki.vrf_verify(0, b"alpha", output)
        _, hits, _, _ = pki.verification_counters()
        assert hits == 1

    def test_unhashable_proof_bypasses_cache(self):
        pki = self.make_pki()
        weird = VRFOutput(value=5, proof=[1, 2, 3])
        assert not pki.vrf_verify(0, b"alpha", weird)
        assert not pki.vrf_verify(0, b"alpha", weird)
        verifs, hits, _, _ = pki.verification_counters()
        assert (verifs, hits) == (2, 0)


class TestMailboxProbeAllocation:
    def test_probe_does_not_allocate_a_buffer(self):
        box = Mailbox()
        for i in range(100):
            box.stream(("future-round", i))
        assert list(box.instances()) == []
        assert box.count(("future-round", 0)) == 0

    def test_probe_view_sees_later_deliveries(self):
        box = Mailbox()
        view = box.stream("ghost")
        assert len(view) == 0
        assert not view
        box.add(4, Message(instance="ghost"))
        assert len(view) == 1
        assert view[0][0] == 4
        assert [sender for sender, _ in view] == [4]
        assert view == box.stream("ghost")

    def test_existing_instance_returns_the_live_list(self):
        box = Mailbox()
        box.add(1, Message(instance="a"))
        stream = box.stream("a")
        box.add(2, Message(instance="a"))
        assert len(stream) == 2


class TestEmptySchedulerPool:
    def test_seq_at_raises_descriptive_error(self):
        sim = make_sim(scheduler=FIFOScheduler())
        pool = SchedulerPool(sim)
        with pytest.raises(EmptySchedulerPoolError, match="FIFOScheduler"):
            pool.seq_at(0)

    def test_random_seq_raises_descriptive_error(self):
        rng = random.Random(0)
        sim = make_sim(scheduler=RandomScheduler(rng))
        pool = SchedulerPool(sim)
        with pytest.raises(EmptySchedulerPoolError, match="RandomScheduler"):
            pool.random_seq(rng)

    def test_error_is_a_runtime_error(self):
        assert issubclass(EmptySchedulerPoolError, RuntimeError)


def _self_talker(send_count: int, want: int):
    """Protocol: send ``send_count`` pings to self, return after ``want``."""

    def protocol(ctx):
        for i in range(send_count):
            ctx.send(ctx.pid, Ping("self", payload=i))
        heard = 0

        def got_enough(mailbox):
            nonlocal heard
            heard = len(mailbox.stream("self"))
            return heard if heard >= want else None

        return (yield Wait(got_enough))

    return protocol


class TestExhaustedReporting:
    def test_stop_on_final_permitted_delivery_is_not_exhausted(self):
        # 3 messages in flight, stop condition true after delivery 2 ==
        # max_deliveries: the run terminated normally, with budget spent
        # but not exceeded.
        sim = make_sim(max_deliveries=2, stop_condition=lambda s: 0 in s.finished)
        sim.set_protocol_all(_self_talker(send_count=3, want=2))
        sim.run()
        assert sim.deliveries == 2
        assert sim.stopped_by_condition
        assert not sim.exhausted
        assert not sim.deadlocked

    def test_budget_ran_out_without_stop_is_exhausted(self):
        sim = make_sim(max_deliveries=2, stop_condition=lambda s: 0 in s.finished)
        sim.set_protocol_all(_self_talker(send_count=3, want=3))
        sim.run()
        assert sim.deliveries == 2
        assert sim.exhausted
        assert not sim.stopped_by_condition

    def test_natural_drain_below_budget_unchanged(self):
        sim = make_sim(max_deliveries=10)
        sim.set_protocol_all(_self_talker(send_count=2, want=2))
        sim.run()
        assert sim.deliveries == 2
        assert not sim.exhausted


def _two_instance_protocol(ctx):
    """Send two pings to instance 'noise' then one to 'signal'; wait
    subscribed to 'signal' only."""
    ctx.send(ctx.pid, Ping("noise", payload=0))
    ctx.send(ctx.pid, Ping("noise", payload=1))
    ctx.send(ctx.pid, Ping("signal", payload=2))

    def got_signal(mailbox):
        stream = mailbox.stream("signal")
        return stream[0][1].payload if len(stream) else None

    return (yield Wait(got_signal, instances={"signal"}))


class TestKeyedWakeups:
    def test_unsubscribed_deliveries_are_skipped(self):
        sim = make_sim(scheduler=FIFOScheduler())
        sim.set_protocol_all(_two_instance_protocol)
        sim.run()
        assert sim.returns[0] == 2
        assert sim.metrics.wait_skips == 2
        assert sim.metrics.wait_evaluations == 1

    def test_eager_flag_restores_per_delivery_evaluation(self):
        sim = make_sim(scheduler=FIFOScheduler(), eager_wakeups=True)
        sim.set_protocol_all(_two_instance_protocol)
        sim.run()
        assert sim.returns[0] == 2
        assert sim.metrics.wait_skips == 0
        assert sim.metrics.wait_evaluations == 3

    def test_unsubscribed_wait_evaluates_eagerly(self):
        def protocol(ctx):
            ctx.send(ctx.pid, Ping("noise"))
            ctx.send(ctx.pid, Ping("signal"))
            seen = {"count": 0}

            def condition(mailbox):
                seen["count"] += 1
                return seen["count"] if len(mailbox.stream("signal")) else None

            return (yield Wait(condition))  # no subscription

        sim = make_sim(scheduler=FIFOScheduler())
        sim.set_protocol_all(protocol)
        sim.run()
        assert sim.metrics.wait_skips == 0
        assert sim.metrics.wait_evaluations == 2

    def test_wait_instances_normalised_to_frozenset(self):
        wait = Wait(lambda mailbox: None, instances=["a", "b", "a"])
        assert wait.instances == frozenset({"a", "b"})
        assert Wait(lambda mailbox: None).instances is None
