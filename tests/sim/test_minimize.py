"""Unit tests for schedule minimization (synthetic reproduce oracles).

The real pipeline (record a Byzantine-split run, rebuild it under
seq-exact replay, shrink it) is exercised in
tests/integration/test_forensics.py; here ``reproduce`` is a pure
function of the candidate schedule so the search logic itself --
prefix binary search, complement ddmin, the test counter -- is pinned.
"""

from __future__ import annotations

import pytest

from repro.sim.minimize import (
    MinimizationResult,
    ddmin_deliveries,
    minimal_prefix,
    minimize_schedule,
)

ORDER = [(s, (s + 1) % 4) for s in range(10)]
SEQS = list(range(10))


def needs(*essential):
    """A failure that recurs iff every essential seq was delivered."""
    wanted = set(essential)
    return lambda order, seqs: wanted <= set(seqs)


class TestMinimalPrefix:
    def test_prefix_is_exactly_past_the_last_essential_seq(self):
        assert minimal_prefix(needs(3, 7), ORDER, SEQS) == 8

    def test_raises_when_full_schedule_does_not_reproduce(self):
        with pytest.raises(ValueError, match="does not reproduce"):
            minimal_prefix(needs(99), ORDER, SEQS)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="same deliveries"):
            minimal_prefix(needs(0), ORDER, SEQS[:-1])


class TestDdmin:
    def test_keeps_exactly_the_essential_deliveries(self):
        kept = ddmin_deliveries(needs(3, 7), ORDER, SEQS)
        assert [SEQS[i] for i in kept] == [3, 7]

    def test_empty_failure_shrinks_to_nothing(self):
        assert ddmin_deliveries(needs(), ORDER, SEQS) == []


class TestMinimizeSchedule:
    def test_composes_prefix_and_ddmin(self):
        result = minimize_schedule(needs(3, 7), ORDER, SEQS)
        assert isinstance(result, MinimizationResult)
        assert result.original == 10
        assert result.prefix == 8
        assert result.seqs == (3, 7)
        assert result.order == (ORDER[3], ORDER[7])
        assert result.dropped == (0, 1, 2, 4, 5, 6)
        assert result.deliveries == 2

    def test_prefix_only_skips_ddmin(self):
        result = minimize_schedule(needs(3, 7), ORDER, SEQS, prefix_only=True)
        assert result.prefix == 8
        assert result.seqs == tuple(range(8))
        assert result.dropped == ()

    def test_counts_every_reproduce_call(self):
        calls = []
        oracle = needs(3, 7)

        def counted(order, seqs):
            calls.append(tuple(seqs))
            return oracle(order, seqs)

        result = minimize_schedule(counted, ORDER, SEQS)
        assert result.tests == len(calls)
        assert result.tests > 0

    def test_diverging_candidates_just_fail_to_reproduce(self):
        """A candidate that makes the replay diverge must be treated as
        non-reproducing, not crash the search (forensics catches the
        scheduler's RuntimeError and returns False; here the oracle
        models that directly)."""
        essential = needs(3, 7)

        def oracle(order, seqs):
            if len(seqs) == 5:  # pretend these candidates diverge
                return False
            return essential(order, seqs)

        result = minimize_schedule(oracle, ORDER, SEQS)
        assert {3, 7} <= set(result.seqs)

    def test_describe_and_to_dict_agree(self):
        result = minimize_schedule(needs(3, 7), ORDER, SEQS)
        payload = result.to_dict()
        assert payload["describe"] == result.describe()
        assert payload["minimal_prefix"] == 8
        assert payload["deliveries"] == 2
        assert payload["dropped_seqs"] == [0, 1, 2, 4, 5, 6]
        assert "8" in result.describe() and "2 essential" in result.describe()
