"""Property-based tests for the simulator's core data structures."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim.adversary import _IndexedSet
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message


class IndexedSetMachine(RuleBasedStateMachine):
    """_IndexedSet must behave exactly like a built-in set, plus choose()."""

    def __init__(self):
        super().__init__()
        self.indexed = _IndexedSet()
        self.model: set[int] = set()

    @rule(item=st.integers(0, 50))
    def add(self, item):
        self.indexed.add(item)
        self.model.add(item)

    @rule(item=st.integers(0, 50))
    def discard(self, item):
        self.indexed.discard(item)
        self.model.discard(item)

    @rule(seed=st.integers(0, 1000))
    def choose_is_member(self, seed):
        if self.model:
            assert self.indexed.choose(random.Random(seed)) in self.model

    @invariant()
    def sizes_match(self):
        assert len(self.indexed) == len(self.model)

    @invariant()
    def membership_matches(self):
        for item in range(0, 51, 7):
            assert (item in self.indexed) == (item in self.model)


TestIndexedSetStateful = IndexedSetMachine.TestCase


class TestMailboxProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 3)),  # (sender, instance)
            max_size=60,
        )
    )
    @settings(max_examples=40)
    def test_streams_partition_deliveries(self, deliveries):
        box = Mailbox()
        for sender, instance in deliveries:
            box.add(sender, Message(instance=instance))
        assert box.total_delivered == len(deliveries)
        assert sum(box.count(i) for i in range(4)) == len(deliveries)
        # Per-instance order preserves global order restricted to instance.
        for instance in range(4):
            expected = [s for s, i in deliveries if i == instance]
            assert [s for s, _ in box.stream(instance)] == expected
