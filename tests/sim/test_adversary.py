"""Schedulers and corruption strategies, including the capability wall
between content-oblivious scheduling and message payloads."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.crypto.pki import PKI
from repro.sim.adversary import (
    AdaptiveFirstSpeakersCorruption,
    Adversary,
    ContentAwareMinWithholdScheduler,
    FIFOScheduler,
    RandomScheduler,
    StaticCorruption,
    TargetedDelayScheduler,
    _IndexedSet,
)
from repro.sim.messages import Message
from repro.sim.network import Simulation
from repro.sim.process import Wait


@dataclass
class Note(Message):
    value: int = 0

    def words(self) -> int:
        return 1


def run_with(scheduler, n=4, seed=0, protocol=None):
    pki = PKI.create(n, rng=random.Random(seed))
    sim = Simulation(
        n=n,
        f=0,
        pki=pki,
        adversary=Adversary(scheduler=scheduler),
        seed=seed,
    )
    sim.set_protocol_all(protocol or _collector)
    sim.run()
    return sim


def _collector(ctx):
    ctx.broadcast(Note("notes", value=ctx.pid))
    order = []
    cursor = 0

    def condition(mailbox):
        nonlocal cursor
        stream = mailbox.stream("notes")
        while cursor < len(stream):
            sender, _ = stream[cursor]
            cursor += 1
            order.append(sender)
        if len(order) >= ctx.n:
            return tuple(order)
        return None

    return (yield Wait(condition))


class TestIndexedSet:
    def test_add_discard_choose(self):
        s = _IndexedSet()
        for item in range(10):
            s.add(item)
        assert len(s) == 10
        s.discard(5)
        s.discard(5)  # idempotent
        assert len(s) == 9
        assert 5 not in s
        rng = random.Random(0)
        chosen = {s.choose(rng) for _ in range(200)}
        assert chosen == set(range(10)) - {5}

    def test_add_is_idempotent(self):
        s = _IndexedSet()
        s.add(1)
        s.add(1)
        assert len(s) == 1

    def test_discard_last_element(self):
        s = _IndexedSet()
        s.add(1)
        s.discard(1)
        assert len(s) == 0


class TestFIFOScheduler:
    def test_delivers_in_submission_order(self):
        sim = run_with(FIFOScheduler(), n=3)
        # With FIFO, every process hears senders in pid order (each pid's
        # broadcast was submitted before the next pid started).
        for pid in range(3):
            assert sim.returns[pid] == (0, 1, 2)


class TestRandomScheduler:
    def test_different_seeds_give_different_orders(self):
        orders = set()
        for seed in range(6):
            sim = run_with(RandomScheduler(random.Random(seed)), n=4, seed=seed)
            orders.add(sim.returns[0])
        assert len(orders) > 1

    def test_all_messages_still_delivered(self):
        sim = run_with(RandomScheduler(random.Random(3)), n=5, seed=3)
        for pid in range(5):
            assert sorted(sim.returns[pid]) == list(range(5))


class TestTargetedDelayScheduler:
    def test_target_messages_arrive_last(self):
        scheduler = TargetedDelayScheduler(targets={0}, rng=random.Random(1))
        sim = run_with(scheduler, n=4, seed=1)
        # Messages *from* pid 0 are starved: every other process hears 0 last.
        for pid in range(1, 4):
            assert sim.returns[pid][-1] == 0

    def test_liveness_preserved(self):
        scheduler = TargetedDelayScheduler(targets={0, 1}, rng=random.Random(2))
        sim = run_with(scheduler, n=5, seed=2)
        assert not sim.deadlocked
        assert len(sim.returns) == 5


class TestContentCapabilityWall:
    def test_oblivious_scheduler_cannot_read_payloads(self):
        pki = PKI.create(2, rng=random.Random(0))
        scheduler = RandomScheduler(random.Random(0))
        sim = Simulation(
            n=2, f=0, pki=pki, adversary=Adversary(scheduler=scheduler), seed=0
        )
        sim.set_protocol_all(_collector)
        # Submit something so the pool is non-empty, then poke it directly.
        sim.submit(0, 1, Note("notes", value=7))
        pool = sim._pool
        seq = pool.seq_at(0)
        with pytest.raises(PermissionError):
            pool.payload(seq)
        # Metadata view is fine.
        view = pool.view(seq)
        assert view.sender == 0 and view.dest == 1 and view.kind == "Note"

    def test_content_aware_scheduler_may_read(self):
        pki = PKI.create(2, rng=random.Random(0))
        scheduler = ContentAwareMinWithholdScheduler(rng=random.Random(0))
        sim = Simulation(
            n=2, f=0, pki=pki, adversary=Adversary(scheduler=scheduler), seed=0
        )
        sim.set_protocol_all(_collector)
        sim.submit(0, 1, Note("notes", value=7))
        pool = sim._pool
        assert pool.payload(pool.seq_at(0)).value == 7

    def test_min_withhold_starves_smallest_value(self):
        # Two values in flight: the smaller is only delivered once nothing
        # else remains.
        scheduler = ContentAwareMinWithholdScheduler(rng=random.Random(0))
        sim = run_with(scheduler, n=4, seed=5)
        assert not sim.deadlocked  # reordering only; reliable links hold


class TestCorruptionStrategies:
    def test_static_corruption_initial_set(self):
        strategy = StaticCorruption({1, 3})
        assert strategy.initial_corruptions(5, 2) == {1, 3}

    def test_adaptive_first_speakers(self):
        strategy = AdaptiveFirstSpeakersCorruption()

        class FakeView:
            sender = 4

        assert strategy.on_delivery(FakeView(), frozenset()) == {4}
        assert strategy.on_delivery(FakeView(), frozenset({4})) == set()

    def test_default_strategy_corrupts_nobody(self):
        from repro.sim.adversary import CorruptionStrategy

        strategy = CorruptionStrategy()
        assert strategy.initial_corruptions(5, 2) == set()
