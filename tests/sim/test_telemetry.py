"""The telemetry probe: bounded sampling, determinism, sidecar round-trip."""

from __future__ import annotations

import json

import pytest

from repro.experiments.protocols import make_runner
from repro.experiments.store import to_jsonable
from repro.sim.flightrecorder import FlightRecorder
from repro.sim.runner import run_protocol, stop_when_all_decided
from repro.sim.telemetry import (
    TELEMETRY_SCHEMA,
    TELEMETRY_SCHEMA_VERSION,
    SeriesBank,
    StreamingQuantiles,
    TelemetryProbe,
    load_telemetry,
    save_telemetry,
    telemetry_from_events,
    telemetry_path_for,
)


class TestSeriesBank:
    def test_under_budget_keeps_every_row(self):
        bank = SeriesBank(("a", "b"), budget=16)
        for step in range(10):
            assert bank.record(step, (step, step * 2)) is False
        assert bank.stride == 1
        assert bank.steps == list(range(10))
        assert bank.columns["b"] == [step * 2 for step in range(10)]

    def test_overflow_halves_and_signals_caller(self):
        bank = SeriesBank(("a",), budget=8)
        coarsened = [bank.record(step, (step,)) for step in range(20)]
        # Every overflow drops every other retained row and doubles the
        # recorded stride; the caller widens its grid on each True.
        assert any(coarsened)
        assert bank.stride == 2 ** sum(coarsened)
        assert len(bank.steps) <= 8

    def test_always_spans_run_within_budget_bounds(self):
        budget = 16
        bank = SeriesBank(("gauge",), budget=budget)
        for step in range(1000):
            bank.record(step, (float(step),))
        assert budget // 2 <= len(bank.steps) <= budget
        assert bank.steps[0] == 0  # oldest sample survives decimation
        assert bank.steps == sorted(bank.steps)
        assert len(bank.columns["gauge"]) == len(bank.steps)

    def test_to_dict_shares_stride_and_steps(self):
        bank = SeriesBank(("a", "b"), budget=8)
        for step in range(5):
            bank.record(step, (step, -step))
        doc = bank.to_dict()
        assert set(doc) == {"a", "b"}
        assert doc["a"]["steps"] == doc["b"]["steps"]
        assert doc["a"]["stride"] == bank.stride

    def test_tiny_budget_rejected(self):
        with pytest.raises(ValueError, match="at least 8"):
            SeriesBank(("a",), budget=4)


class TestStreamingQuantiles:
    def test_exact_stats_without_overflow(self):
        sketch = StreamingQuantiles(budget=64)
        for value in range(50):
            sketch.record(value)
        doc = sketch.to_dict()
        assert doc["count"] == 50
        assert doc["min"] == 0 and doc["max"] == 49
        assert doc["p50"] == round(0.5 * 49)

    def test_count_min_max_exact_under_decimation(self):
        sketch = StreamingQuantiles(budget=8)
        for value in range(1000):
            sketch.record(value)
        assert sketch.count == 1000
        assert sketch.vmin == 0 and sketch.vmax == 999
        assert len(sketch.sample) <= 8
        assert sketch.stride > 1

    def test_decimated_quantiles_stay_representative(self):
        sketch = StreamingQuantiles(budget=32)
        for value in range(10_000):
            sketch.record(value)
        # Systematic sampling of a uniform ramp: nearest-rank p50 must
        # land well inside the middle half.
        assert 2_500 < sketch.quantile(0.5) < 7_500

    def test_empty_sketch(self):
        sketch = StreamingQuantiles()
        assert sketch.quantile(0.5) is None
        assert sketch.to_dict()["count"] == 0

    def test_tiny_budget_rejected(self):
        with pytest.raises(ValueError, match="at least 8"):
            StreamingQuantiles(budget=2)


def _ba_run(seed=7, n=16, telemetry=None, subscribers=None):
    factory, params, f = make_runner("whp_ba", n, seed=seed)
    return run_protocol(
        n, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        telemetry=telemetry, subscribers=subscribers,
    )


@pytest.fixture(scope="module")
def probed_run():
    """One whp_ba run with a probe and a recorder attached."""
    probe = TelemetryProbe(sample_budget=64)
    recorder = FlightRecorder()
    result = _ba_run(telemetry=probe, subscribers=[recorder.on_event])
    return probe, recorder, result


class TestTelemetryProbe:
    def test_attached_probe_does_not_perturb_the_run(self, probed_run):
        _, _, observed = probed_run
        bare = _ba_run()
        assert to_jsonable(bare) == to_jsonable(observed)

    def test_identical_seeds_produce_identical_snapshots(self):
        first = TelemetryProbe(sample_budget=64)
        second = TelemetryProbe(sample_budget=64)
        _ba_run(telemetry=first)
        _ba_run(telemetry=second)
        assert first.snapshot() == second.snapshot()

    def test_snapshot_is_pure_function_of_event_log(self, probed_run):
        probe, recorder, _ = probed_run
        replayed = telemetry_from_events(recorder.events, sample_budget=64)
        assert replayed == probe.snapshot()

    def test_snapshot_idempotent(self, probed_run):
        probe, _, _ = probed_run
        assert probe.snapshot() == probe.snapshot()

    def test_counters_match_run_result(self, probed_run):
        probe, _, result = probed_run
        snap = probe.snapshot()
        assert snap["counters"]["delivers"] == result.deliveries
        # Cumulative words (correct senders only) match the kernel's
        # word-complexity accounting exactly.
        assert snap["words_total"] == result.words

    def test_series_respect_sample_budget(self, probed_run):
        probe, _, result = probed_run
        snap = probe.snapshot()
        series = snap["series"]
        in_flight = series["in_flight"]
        assert result.deliveries > 64  # the budget was actually exercised
        assert 32 <= len(in_flight["steps"]) <= 64
        assert in_flight["steps"] == sorted(in_flight["steps"])
        layers = series["words_by_layer"]
        assert set(layers) == {"approver", "coin", "other"}
        for entry in (*layers.values(), series["blocked"], series["backlog_max"]):
            assert len(entry["values"]) == len(in_flight["steps"])
            assert entry["stride"] == in_flight["stride"]

    def test_words_by_layer_is_cumulative_and_complete(self, probed_run):
        probe, _, result = probed_run
        layers = probe.snapshot()["series"]["words_by_layer"]
        for entry in layers.values():
            assert entry["values"] == sorted(entry["values"])
        final_sum = sum(entry["values"][-1] for entry in layers.values())
        # The last grid sample may predate the final deliveries, so the
        # layered sum is bounded by (and close to) the exact total.
        assert final_sum <= result.words

    def test_latency_quantiles_sampled_and_sane(self, probed_run):
        probe, _, _ = probed_run
        quantiles = probe.snapshot()["quantiles"]
        latency = quantiles["link_latency_steps"]
        assert latency["source_stride"] == 8
        assert latency["count"] > 0
        assert 0 <= latency["min"] <= latency["p50"] <= latency["p99"]
        waits = quantiles["wait_steps"]
        assert waits["count"] > 0 and waits["min"] >= 0
        assert quantiles["wait_depth"]["min"] >= 0

    def test_depth_profile_covers_run(self, probed_run):
        probe, _, result = probed_run
        profile = probe.snapshot()["depth_profile"]
        assert profile and profile == sorted(profile, key=lambda r: r["depth"])
        assert sum(row["messages"] for row in profile) == result.deliveries
        decisions = sum(row["decisions"] for row in profile)
        assert decisions >= result.n - result.f


class TestSidecar:
    def test_save_load_round_trip_with_header(self, probed_run, tmp_path):
        probe, _, _ = probed_run
        path = save_telemetry(
            tmp_path / "run.telemetry.json", probe, header={"n": 16, "seed": 7}
        )
        loaded = load_telemetry(path)
        assert loaded["run"] == {"n": 16, "seed": 7}
        assert loaded["schema"] == TELEMETRY_SCHEMA
        assert loaded["version"] == TELEMETRY_SCHEMA_VERSION
        expected = probe.snapshot()
        assert loaded["counters"] == expected["counters"]
        assert loaded["series"] == json.loads(json.dumps(expected["series"]))

    def test_sidecar_path_convention(self):
        assert (
            telemetry_path_for("runs/flight.jsonl").name
            == "flight.telemetry.json"
        )

    def test_empty_file_diagnosed(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            load_telemetry(path)

    def test_damaged_json_diagnosed(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('{"schema": "repro.telemetry", ')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_telemetry(path)

    def test_foreign_schema_diagnosed(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('{"schema": "other.thing", "version": 1}')
        with pytest.raises(ValueError, match="unknown schema"):
            load_telemetry(path)

    def test_future_version_diagnosed(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(
            json.dumps({"schema": TELEMETRY_SCHEMA, "version": 99})
        )
        with pytest.raises(ValueError, match="version"):
            load_telemetry(path)
