"""Mailbox semantics: append-only, per-instance streams."""

from __future__ import annotations

from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message


def msg(instance):
    return Message(instance=instance)


class TestMailbox:
    def test_streams_are_per_instance(self):
        box = Mailbox()
        box.add(1, msg("a"))
        box.add(2, msg("b"))
        box.add(3, msg("a"))
        assert [sender for sender, _ in box.stream("a")] == [1, 3]
        assert [sender for sender, _ in box.stream("b")] == [2]

    def test_stream_is_append_only_view(self):
        box = Mailbox()
        stream = box.stream("a")
        assert stream == []
        box.add(1, msg("a"))
        assert len(stream) == 1  # same list object grows in place

    def test_unknown_instance_is_empty(self):
        box = Mailbox()
        assert box.stream("never") == []
        assert box.count("never") == 0

    def test_total_delivered(self):
        box = Mailbox()
        for i in range(5):
            box.add(i, msg(i % 2))
        assert box.total_delivered == 5
        assert box.count(0) == 3
        assert box.count(1) == 2

    def test_tuple_instances(self):
        box = Mailbox()
        box.add(0, msg(("ba", 1, "est")))
        assert box.count(("ba", 1, "est")) == 1
        assert box.count(("ba", 1, "prop")) == 0

    def test_instances_iteration(self):
        box = Mailbox()
        box.add(0, msg("x"))
        box.add(0, msg("y"))
        assert set(box.instances()) == {"x", "y"}
