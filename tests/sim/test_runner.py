"""run_protocol wiring and RunResult semantics."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.sim.messages import Message
from repro.sim.process import Wait
from repro.sim.runner import run_protocol, stop_when_all_decided


@dataclass
class Beat(Message):
    def words(self) -> int:
        return 2


def heartbeat(ctx):
    """Broadcast once, wait to hear from a majority, decide, return pid."""
    ctx.broadcast(Beat("hb"))
    senders = set()
    cursor = 0

    def majority(mailbox):
        nonlocal cursor
        stream = mailbox.stream("hb")
        while cursor < len(stream):
            senders.add(stream[cursor][0])
            cursor += 1
        if len(senders) > ctx.n // 2:
            return len(senders)
        return None

    count = yield Wait(majority)
    ctx.decide("beat")
    return (ctx.pid, count)


class TestRunProtocol:
    def test_basic_run(self):
        result = run_protocol(5, 0, heartbeat, seed=1)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement
        assert result.decided_values == {"beat"}
        assert {pid for pid, _ in result.returns.values()} == set(range(5))

    def test_corrupt_set_applied(self):
        result = run_protocol(6, 2, heartbeat, corrupt={4, 5}, seed=1)
        assert result.corrupted == frozenset({4, 5})
        assert result.correct_pids == [0, 1, 2, 3]
        assert result.all_correct_decided

    def test_adversary_and_corrupt_conflict(self):
        from repro.sim.adversary import Adversary

        with pytest.raises(ValueError):
            run_protocol(3, 1, heartbeat, adversary=Adversary(), corrupt={0})

    def test_per_pid_protocol_override(self):
        def zero_decider(ctx):
            ctx.broadcast(Beat("hb"))
            ctx.decide("special")
            return ("special", 0)
            yield

        result = run_protocol(
            4, 0, heartbeat, protocols_by_pid={0: zero_decider}, seed=2
        )
        assert result.decisions[0] == "special"
        assert result.decisions[1] == "beat"
        assert not result.agreement  # two distinct decided values

    def test_seed_reproducibility(self):
        a = run_protocol(5, 0, heartbeat, seed=9)
        b = run_protocol(5, 0, heartbeat, seed=9)
        assert a.returns == b.returns
        assert a.deliveries == b.deliveries
        assert a.words == b.words

    def test_stop_when_all_decided(self):
        def decide_then_loop(ctx):
            ctx.broadcast(Beat("hb"))
            yield Wait(lambda mailbox: True if mailbox.count("hb") else None)
            ctx.decide(1)
            yield Wait(lambda mailbox: None)  # would deadlock without stop

        result = run_protocol(
            3, 0, decide_then_loop, stop_condition=stop_when_all_decided, seed=3
        )
        assert result.stopped_by_condition
        assert not result.deadlocked
        assert result.all_correct_decided


class TestRunResultProperties:
    def test_word_accounting(self):
        result = run_protocol(4, 1, heartbeat, corrupt={3}, seed=4)
        # 3 correct processes broadcast one 2-word Beat to 4 destinations.
        assert result.words == 3 * 4 * 2
        assert result.metrics.words_by_kind["Beat"] == result.words

    def test_duration_positive(self):
        result = run_protocol(4, 0, heartbeat, seed=5)
        assert result.duration >= 1

    def test_returned_values_excludes_corrupted(self):
        result = run_protocol(5, 2, heartbeat, corrupt={0, 1}, seed=6)
        pids = {pid for pid, _ in result.returned_values}
        assert pids == {2, 3, 4}

    def test_agreement_vacuous_when_no_decisions(self):
        def silent(ctx):
            return None
            yield

        result = run_protocol(3, 0, silent, seed=7)
        assert result.agreement
        assert not result.all_correct_decided
