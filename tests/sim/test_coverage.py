"""The coverage probe: deterministic signatures, bounded state, zero
observer effect (see DESIGN.md section 11)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.protocols import make_runner
from repro.experiments.store import to_jsonable
from repro.sim.coverage import (
    COVERAGE_SCHEMA,
    COVERAGE_SCHEMA_VERSION,
    CoverageProbe,
    coverage_from_events,
    signature_set,
)
from repro.sim.flightrecorder import (
    FlightRecorder,
    load_recording,
    save_recording,
)
from repro.sim.runner import run_protocol, stop_when_all_decided

N = 20


def covered_run(seed=3, coverage=None, recorder=None):
    factory, params, f = make_runner("whp_ba", N, seed=seed)
    subscribers = [recorder.on_event] if recorder is not None else None
    return run_protocol(
        N, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        subscribers=subscribers, coverage=coverage,
    )


@pytest.fixture(scope="module")
def recorded():
    """One recorded run with a live probe attached (module-scoped: the
    run is the expensive part, the assertions are cheap)."""
    recorder = FlightRecorder()
    probe = CoverageProbe()
    result = covered_run(coverage=probe, recorder=recorder)
    return recorder, probe.snapshot(), result


def canonical(snapshot):
    return json.dumps(snapshot, sort_keys=True)


class TestDeterminism:
    def test_live_equals_replay(self, recorded):
        """The live probe and a replay over the recorded events produce
        byte-identical snapshots: coverage is a pure function of the
        event stream."""
        recorder, live, _ = recorded
        assert canonical(coverage_from_events(recorder.events)) == canonical(live)

    def test_disk_roundtrip_equals_live(self, recorded, tmp_path):
        """Recompute from a recording *file*: serialisation must not
        perturb a single signature or count."""
        recorder, live, result = recorded
        path = tmp_path / "flight.jsonl"
        save_recording(path, recorder, result)
        replayed = coverage_from_events(load_recording(path).events)
        assert canonical(replayed) == canonical(live)

    def test_two_live_probes_identical(self):
        """Two probes watching identical runs agree exactly."""
        first = CoverageProbe()
        second = CoverageProbe()
        covered_run(coverage=first)
        covered_run(coverage=second)
        assert canonical(first.snapshot()) == canonical(second.snapshot())

    def test_attaching_probe_does_not_change_the_run(self):
        bare = covered_run()
        covered = covered_run(coverage=CoverageProbe())
        assert to_jsonable(bare) == to_jsonable(covered)


class TestSignatures:
    FAMILIES = {"race", "perm", "block", "wake", "waitspan", "delay", "corrupt"}

    def test_schema_and_shape(self, recorded):
        _, snapshot, _ = recorded
        assert snapshot["schema"] == COVERAGE_SCHEMA
        assert snapshot["version"] == COVERAGE_SCHEMA_VERSION
        assert snapshot["total_signatures"] == len(snapshot["signatures"])
        assert snapshot["total_hits"] == sum(snapshot["signatures"].values())
        assert snapshot["counters"]["events"] > 0
        json.dumps(snapshot)  # JSON-ready as promised

    def test_all_families_covered(self, recorded):
        """A full BA run with corruptions exercises every family."""
        _, snapshot, _ = recorded
        assert set(snapshot["families"]) == self.FAMILIES

    def test_signatures_belong_to_known_families(self, recorded):
        _, snapshot, _ = recorded
        for signature in snapshot["signatures"]:
            assert signature.split(":", 1)[0] in self.FAMILIES, signature

    def test_round_numbers_abstracted(self, recorded):
        """Instance classes embed rounds as ``*``: no race/perm
        signature may leak a concrete round id, or signature sets stop
        being comparable across runs."""
        _, snapshot, _ = recorded
        for signature in snapshot["signatures"]:
            family, rest = signature.split(":", 1)
            if family in ("race", "perm"):
                iclass = rest.rsplit(":", 1)[0]
                assert not any(ch.isdigit() for ch in iclass), signature

    def test_cross_seed_overlap(self, recorded):
        """Different seeds cover overlapping structural signatures --
        the point of abstraction: the atlas can accumulate them."""
        _, snapshot, _ = recorded
        other = CoverageProbe()
        covered_run(seed=11, coverage=other)
        shared = signature_set(snapshot) & signature_set(other.snapshot())
        assert len(shared) >= 10

    def test_signature_set_helper(self, recorded):
        _, snapshot, _ = recorded
        sigs = signature_set(snapshot)
        assert sigs == set(snapshot["signatures"])
        assert signature_set({}) == set()


class TestBounds:
    def test_tiny_budget_drops_deterministically(self, recorded):
        """An 8-key budget forces drops; the drop pattern is a pure
        function of the stream, so two replays agree exactly."""
        recorder, _, _ = recorded
        first = coverage_from_events(recorder.events, signature_budget=8)
        second = coverage_from_events(recorder.events, signature_budget=8)
        assert first["dropped_signatures"] > 0
        assert canonical(first) == canonical(second)

    def test_budget_caps_tracked_keys(self, recorded):
        recorder, full, _ = recorded
        capped = coverage_from_events(recorder.events, signature_budget=8)
        assert capped["total_signatures"] < full["total_signatures"]

    def test_budget_floor_rejected(self):
        with pytest.raises(ValueError, match="at least 8"):
            CoverageProbe(signature_budget=4)
