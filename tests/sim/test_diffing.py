"""Unit tests for the divergence differ on synthetic event logs.

The integration story (real recordings from real runs) lives in
tests/integration/test_forensics.py; here the logs are hand-built so
every branch of the localizer -- field delta, early truncation,
schedule-vs-content divergence, header identity, slice bounding -- is
pinned on a minimal example.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.sim.diffing import (
    DEFAULT_MAX_SLICE,
    causal_slice,
    diff_events,
    diff_recordings,
    divergence_hint,
    format_divergence,
    save_divergence,
)
from repro.sim.events import (
    DecideEvent,
    DeliverEvent,
    PayloadSummary,
    SendEvent,
)
from repro.sim.flightrecorder import Recording


def send(step, seq, sender, dest, depth, words=3):
    return SendEvent(
        step=step, seq=seq, sender=sender, dest=dest, instance="i",
        message_kind="Echo", words=words, depth=depth, sender_correct=True,
    )


def deliver(step, seq, sender, dest, depth, words=3, sent_step=0):
    return DeliverEvent(
        step=step, seq=seq, sender=sender, dest=dest, instance="i",
        message_kind="Echo", words=words, depth=depth, sent_step=sent_step,
        summary=PayloadSummary("Echo", "i", words, "Echo"),
    )


def chain_log():
    """0 sends to 1, 1 relays to 2, 2 decides: one clean causal chain."""
    return [
        send(0, 0, sender=0, dest=1, depth=1),
        deliver(1, 0, sender=0, dest=1, depth=1),
        send(1, 1, sender=1, dest=2, depth=2),
        deliver(2, 1, sender=1, dest=2, depth=2, sent_step=1),
        DecideEvent(step=2, pid=2, value=1, depth=2),
    ]


class TestDiffEvents:
    def test_identical_logs(self):
        report = diff_events(chain_log(), chain_log())
        assert report.identical
        assert report.index is None
        assert "identical" in report.describe()

    def test_content_mutation_localized_to_exact_seq(self):
        mutated = chain_log()
        mutated[3] = dataclasses.replace(mutated[3], words=10)
        report = diff_events(chain_log(), mutated)
        assert not report.identical
        assert report.index == 3
        assert report.seq == 1
        assert report.kind == "deliver"
        assert report.changed == ("words: 3 -> 10",)
        # Same (sender, dest, seq) schedule on both sides: the schedules
        # agree, only the event content differs.
        assert report.delivery_index is None
        assert "seq 1" in report.describe()

    def test_schedule_divergence_reports_delivery_index(self):
        reordered = chain_log()
        reordered[1], reordered[3] = (
            dataclasses.replace(reordered[3], step=1),
            dataclasses.replace(reordered[1], step=2),
        )
        report = diff_events(chain_log(), reordered)
        assert not report.identical
        assert report.delivery_index == 0

    def test_truncated_log_ends_early(self):
        report = diff_events(chain_log(), chain_log()[:3])
        assert not report.identical
        assert report.index == 3
        assert report.a_event is not None and report.b_event is None
        assert "ends early" in report.describe()
        # The slice is built from the side that still has the event.
        assert report.slice[-1]["divergent"] is True

    def test_slice_walks_the_causal_chain(self):
        mutated = chain_log()
        mutated[4] = dataclasses.replace(mutated[4], value=0)
        report = diff_events(chain_log(), mutated)
        kinds = [entry["kind"] for entry in report.slice]
        # Causal order: the chain into the decide, then the decide itself.
        assert kinds == ["send", "deliver", "send", "deliver", "decide"]
        assert report.slice[-1]["divergent"] is True
        assert sum(1 for e in report.slice if e.get("divergent")) == 1

    def test_max_slice_bounds_the_chain(self):
        mutated = chain_log()
        mutated[4] = dataclasses.replace(mutated[4], value=0)
        report = diff_events(chain_log(), mutated, max_slice=2)
        assert len(report.slice) <= 2
        assert report.slice[-1]["divergent"] is True

    def test_default_slice_bound_is_twenty(self):
        assert DEFAULT_MAX_SLICE == 20

    def test_causal_slice_empty_log(self):
        assert causal_slice([], 0) == []


class TestDiffRecordings:
    def _recording(self, events, header=None, summary=None):
        base = {"schema": "repro.flight", "version": 2, "n": 3, "f": 0,
                "seed": 7, "corrupted": [], "protocol": "whp_ba"}
        base.update(header or {})
        return Recording(
            header=base, events=tuple(events),
            summary={"deliveries": 2, "decisions": {"2": 1}, **(summary or {})},
        )

    def test_identical_recordings(self):
        report = diff_recordings(
            self._recording(chain_log()), self._recording(chain_log())
        )
        assert report.identical

    def test_header_mismatch_means_different_runs(self):
        report = diff_recordings(
            self._recording(chain_log()),
            self._recording(chain_log(), header={"seed": 8}),
        )
        assert not report.identical
        assert report.header_mismatches == ("seed: 7 vs 8",)
        assert "different runs" in report.describe()

    def test_summary_drift_with_identical_events(self):
        report = diff_recordings(
            self._recording(chain_log()),
            self._recording(chain_log(), summary={"decisions": {"2": 0}}),
        )
        assert not report.identical
        assert report.index is None
        assert any("decisions" in drift for drift in report.summary_drifts)
        assert "summaries drift" in report.describe()


class TestRenderingAndPersistence:
    def test_format_divergence_marks_the_divergent_line(self):
        mutated = chain_log()
        mutated[3] = dataclasses.replace(mutated[3], words=10)
        text = format_divergence(
            diff_events(chain_log(), mutated), "a.jsonl", "b.jsonl"
        )
        assert "a: a.jsonl" in text
        assert "<-- DIVERGES" in text
        assert "divergence is in event content" in text

    def test_save_divergence_round_trips(self, tmp_path):
        mutated = chain_log()
        mutated[3] = dataclasses.replace(mutated[3], words=10)
        report = diff_events(chain_log(), mutated)
        path = save_divergence(tmp_path / "x.divergence.json", report)
        payload = json.loads(path.read_text())
        assert payload["seq"] == 1
        assert payload["changed"] == ["words: 3 -> 10"]
        assert payload["slice"][-1]["divergent"] is True
        assert payload["describe"] == report.describe()

    def test_hint_names_both_commands(self):
        hint = divergence_hint("batched != classic")
        assert hint.startswith("batched != classic: ")
        assert "repro diff" in hint and "repro explain" in hint
