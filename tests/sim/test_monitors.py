"""Conformance monitors: paper-property checking with zero observer effect.

Three layers of coverage:

* clean seed scenarios pass every monitor (and accumulate sensible
  cross-run statistics);
* a monitored run is byte-identical to a bare run -- event log, metrics
  and results (the observer-effect-freedom satellite);
* deliberately broken protocols (a two-decision split, an un-proposed
  decision, fabricated record logs) actually trip the right monitor,
  with ViolationReports naming the offending processes and events.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from types import SimpleNamespace

from repro.experiments.protocols import make_runner
from repro.experiments.store import to_jsonable
from repro.sim.byzantine import ScriptedBehavior
from repro.sim.flightrecorder import FlightRecorder
from repro.sim.messages import Message
from repro.sim.metrics import MetricsRecorder, ProtocolRecord
from repro.sim.monitors import (
    ApproverMonitor,
    CoinMonitor,
    CommitteeMonitor,
    MonitorSuite,
    SafetyMonitor,
    as_suite,
    default_monitors,
)
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.process import Wait
from repro.sim.runner import (
    run_protocol,
    stop_when_all_decided,
    stop_when_all_returned,
)


def monitored_ba(n=16, seed=5, suite=None, subscribers=None):
    factory, params, f = make_runner("whp_ba", n, seed=seed)
    result = run_protocol(
        n, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=seed,
        monitors=suite, subscribers=subscribers,
    )
    return result


class TestCleanRun:
    def test_seed_scenario_passes_every_monitor(self):
        suite = MonitorSuite()
        result = monitored_ba(suite=suite)
        assert result.all_correct_decided
        assert suite.ok
        assert suite.violations == []
        report = suite.report()
        assert report["runs"] == 1
        assert report["safety_violations"] == 0
        assert report["monitors"]["safety"]["decisions_checked"] == len(
            result.correct_pids
        )
        assert report["monitors"]["committee"]["committees_checked"] > 0
        assert report["monitors"]["coin"]["variants"]["whp"]["trials"] > 0
        assert report["monitors"]["approver"]["instances_checked"] > 0
        # Every committee property carries its Chernoff bound for context.
        for prop in ("S1", "S2", "S3", "S4"):
            stats = report["monitors"]["committee"]["properties"][prop]
            assert stats["trials"] > 0
            assert stats["chernoff_bound"] is not None
            assert stats["conformant"]

    def test_report_is_json_serializable(self):
        suite = MonitorSuite()
        monitored_ba(suite=suite)
        json.dumps(to_jsonable(suite.report()))

    def test_suite_accumulates_across_runs(self):
        suite = MonitorSuite()
        monitored_ba(seed=5, suite=suite)
        trials_one = suite.report()["monitors"]["coin"]["variants"]["whp"]["trials"]
        monitored_ba(seed=6, suite=suite)
        report = suite.report()
        assert report["runs"] == 2
        assert report["monitors"]["coin"]["variants"]["whp"]["trials"] > trials_one
        assert report["monitors"]["safety"]["decisions_checked"] >= 2 * 15

    def test_as_suite_coercion(self):
        suite = MonitorSuite()
        assert as_suite(suite) is suite
        wrapped = as_suite([SafetyMonitor()])
        assert isinstance(wrapped, MonitorSuite)
        assert len(wrapped.monitors) == 1
        assert len(default_monitors()) == 4


class TestObserverEffectFreedom:
    """Satellite: a monitored run is byte-identical to a bare run."""

    def test_monitored_run_identical_to_bare(self):
        bare_recorder = FlightRecorder()
        bare = monitored_ba(subscribers=[bare_recorder.on_event])

        suite = MonitorSuite()
        monitored_recorder = FlightRecorder()
        monitored = monitored_ba(
            suite=suite, subscribers=[monitored_recorder.on_event]
        )

        # Results, metrics (verification counters included) and the full
        # kernel event log must be byte-identical.
        assert to_jsonable(bare) == to_jsonable(monitored)
        assert bare.metrics.to_dict() == monitored.metrics.to_dict()
        assert [to_jsonable(e) for e in bare_recorder.events] == [
            to_jsonable(e) for e in monitored_recorder.events
        ]
        assert suite.ok


# -- deliberately broken protocols --------------------------------------------


@dataclass
class Nudge(Message):
    payload: int = 0


def split_decider(ctx):
    """Broken BA: decides pid parity after hearing one Byzantine nudge."""
    first = yield Wait(
        lambda mailbox: mailbox.stream("nudge")[0]
        if mailbox.stream("nudge")
        else None
    )
    ctx.decide(ctx.pid % 2)
    return ctx.decision


class TestSafetyMonitorFires:
    """Satellite: the two-decision Byzantine scenario trips Agreement."""

    def run_split(self, suite, on_violation=None):
        n, f, byzantine = 4, 1, 3
        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(11)),
            corruption=StaticCorruption({byzantine}),
            behavior_factory=lambda pid: ScriptedBehavior(
                on_start=lambda ctx: ctx.broadcast(Nudge("nudge"))
            ),
        )
        return run_protocol(
            n, f, split_decider, adversary=adversary, seed=11,
            stop_condition=stop_when_all_decided, monitors=suite,
        )

    def test_two_decisions_flagged_with_offenders_and_evidence(self):
        fired = []
        suite = MonitorSuite(on_violation=fired.append)
        result = self.run_split(suite)
        assert not result.agreement  # the protocol really is broken
        assert not suite.ok

        violation = suite.safety_violations[0]
        assert violation.monitor == "safety"
        assert violation.prop == "Agreement"
        assert violation.severity == "safety"
        # Names the two offending (correct) processes...
        assert len(violation.pids) == 2
        decided = {pid: result.decisions[pid] for pid in violation.pids}
        assert len(set(decided.values())) == 2
        assert all(pid not in result.corrupted for pid in violation.pids)
        # ...embeds their decide events...
        kinds = [event["k"] for event in violation.events]
        assert kinds == ["decide", "decide"]
        assert {event["pid"] for event in violation.events} == set(violation.pids)
        # ...and the causal critical-path slice explaining the decision.
        assert violation.critical_slice
        assert violation.critical_slice[-1]["kind"] == "decide"
        assert any(
            entry["kind"] == "deliver" for entry in violation.critical_slice
        )
        # The live callback fired during the run, not just at finalize.
        assert fired and fired[0].prop == "Agreement"
        # describe() is the one-liner `repro check` prints.
        assert "Agreement" in violation.describe()
        assert f"pids={list(violation.pids)}" in violation.describe()

    def test_violation_report_round_trips_to_json(self):
        suite = MonitorSuite()
        self.run_split(suite)
        payload = json.dumps(to_jsonable(suite.report()))
        assert "Agreement" in payload


def validity_breaker(ctx):
    """Annotates an honest proposal of 0, then decides 1 anyway."""
    ctx.annotate("propose", tag="ba", value=repr(0))
    ctx.decide(1)
    return ctx.decision
    yield  # pragma: no cover - makes this a generator


class TestValidityMonitor:
    def test_unproposed_decision_flagged(self):
        suite = MonitorSuite()
        run_protocol(
            3, 0, validity_breaker, seed=2,
            stop_condition=stop_when_all_returned, monitors=suite,
        )
        violations = [v for v in suite.safety_violations if v.prop == "Validity"]
        assert len(violations) == 3  # every correct process decided 1
        assert violations[0].severity == "safety"
        assert "no correct process proposed" in violations[0].message
        assert suite.report()["monitors"]["safety"]["validity_violations"] == 3


# -- monitor unit tests on fabricated runs ------------------------------------


def record(kind, pid, step=0, **data):
    return ProtocolRecord(
        step=step, pid=pid, kind=kind, data=tuple(data.items())
    )


def stub_run(records, corrupted=(), params=None, pki=None, deliveries=100):
    metrics = MetricsRecorder()
    metrics.protocol_records.extend(records)
    result = SimpleNamespace(
        metrics=metrics, corrupted=frozenset(corrupted), deliveries=deliveries
    )
    simulation = SimpleNamespace(params=params, pki=pki)
    return result, simulation


class TestCoinMonitorUnit:
    def test_disagreement_flagged_and_counted(self):
        monitor = CoinMonitor()
        monitor.begin_run()
        result, simulation = stub_run(
            [
                record("coin", 0, instance=("c", 0), variant="whp", outcome=1),
                record("coin", 1, instance=("c", 0), variant="whp", outcome=0),
                record("coin", 0, instance=("c", 1), variant="whp", outcome=1),
                record("coin", 1, instance=("c", 1), variant="whp", outcome=1),
                record("coin", 2, instance=("c", 1), variant="whp", outcome=0),
            ],
            corrupted={2},  # pid 2's dissent must not count
        )
        monitor.finalize(result, simulation, [])
        assert monitor.trials["whp"] == 2
        assert monitor.successes["whp"] == 1
        assert len(monitor.violations) == 1
        violation = monitor.violations[0]
        assert violation.prop == "coin-agreement"
        assert violation.severity == "whp"
        assert violation.instance == ("c", 0)
        assert set(violation.pids) == {0, 1}


class TestApproverMonitorUnit:
    def test_graded_agreement_and_validity(self):
        monitor = ApproverMonitor()
        monitor.begin_run()
        result, simulation = stub_run(
            [
                record("approve", 0, instance="a", grade=1, values=["'0'"],
                       input="'0'"),
                record("approve", 1, instance="a", grade=1, values=["'1'"],
                       input="'1'"),
                record("approve", 0, instance="b", grade=2,
                       values=["'0'", "'7'"], input="'0'"),
                record("approve", 1, instance="b", grade=2,
                       values=["'0'", "'7'"], input="'0'"),
            ]
        )
        monitor.finalize(result, simulation, [])
        props = {v.prop for v in monitor.violations}
        # instance "a": two contradicting singletons -> Graded Agreement.
        assert "Graded-Agreement" in props
        # instance "b": '7' was nobody's input -> approver Validity.
        assert "Validity" in props
        assert monitor.ga_violations == 1
        assert monitor.validity_violations == 2
        assert all(v.severity == "whp" for v in monitor.violations)

    def test_empty_return_set_is_safety(self):
        monitor = ApproverMonitor()
        monitor.begin_run()
        result, simulation = stub_run(
            [record("approve", 0, instance="a", grade=0, values=[])]
        )
        monitor.finalize(result, simulation, [])
        assert monitor.violations[0].prop == "Termination"
        assert monitor.violations[0].severity == "safety"


class TestCommitteeMonitorUnit:
    def make_params(self, small_pki):
        from repro.core.params import ProtocolParams

        return ProtocolParams(n=small_pki.n, f=0, lam=6.0, d=0.05)

    def test_census_violations_flagged(self, small_pki):
        params = self.make_params(small_pki)
        # Deterministic fake census: the ground truth is {0, 1}, so with
        # lam=6, d=0.05 the size bound S2 (>= 5.7) must fire.
        monitor = CommitteeMonitor(census=lambda pki, i, r, p: {0, 1})
        monitor.begin_run()
        result, simulation = stub_run(
            [
                record("sampled", 0, instance="x", role="init", member=True),
                record("sampled", 1, instance="x", role="init", member=True),
            ],
            params=params,
            pki=small_pki,
        )
        monitor.finalize(result, simulation, [])
        assert monitor.trials["S2"] == 1
        assert monitor.failures["S2"] == 1
        flagged = {v.prop for v in monitor.violations}
        assert "S2" in flagged
        assert all(
            v.severity == "whp" for v in monitor.violations if v.prop == "S2"
        )

    def test_membership_lie_is_safety(self, small_pki):
        params = self.make_params(small_pki)
        monitor = CommitteeMonitor(census=lambda pki, i, r, p: {0, 1})
        monitor.begin_run()
        result, simulation = stub_run(
            # pid 5 claims membership; the VRF ground truth excludes it.
            [record("sampled", 5, instance="x", role="init", member=True)],
            params=params,
            pki=small_pki,
        )
        monitor.finalize(result, simulation, [])
        lies = [v for v in monitor.violations if v.prop == "sample-consistency"]
        assert len(lies) == 1
        assert lies[0].severity == "safety"
        assert lies[0].pids == (5,)

    def test_real_census_matches_self_reports(self):
        """On a real run the VRF ground truth never contradicts correct
        processes' sampled records (uniqueness)."""
        suite = MonitorSuite(monitors=[CommitteeMonitor()])
        monitored_ba(n=16, seed=3, suite=suite)
        assert not [
            v for v in suite.violations if v.prop == "sample-consistency"
        ]

    def test_run_without_committee_params_is_skipped(self):
        monitor = CommitteeMonitor()
        monitor.begin_run()
        result, simulation = stub_run([], params=None, pki=None)
        monitor.finalize(result, simulation, [])
        assert monitor.skipped_runs == 1
        assert monitor.violations == []
