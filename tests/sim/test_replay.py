"""Record-and-replay: a traced run re-executes identically."""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.core.whp_coin import whp_coin
from repro.crypto.pki import PKI
from repro.sim.adversary import (
    Adversary,
    RandomScheduler,
    ReplayScheduler,
    StaticCorruption,
)
from repro.sim.network import Simulation
from repro.sim.trace import attach_trace

N, F = 12, 2


def record_run(protocol, params, seed=7):
    pki = PKI.create(N, rng=random.Random(seed))
    sim = Simulation(
        n=N, f=F, pki=pki,
        adversary=Adversary(
            scheduler=RandomScheduler(random.Random(seed)),
            corruption=StaticCorruption({0, 1}),
        ),
        seed=seed, params=params,
    )
    trace = attach_trace(sim)
    sim.set_protocol_all(protocol)
    sim.run()
    return pki, sim, trace


def replay_run(protocol, params, pki, order, seed=7):
    sim = Simulation(
        n=N, f=F, pki=pki,
        adversary=Adversary(
            scheduler=ReplayScheduler(order),
            corruption=StaticCorruption({0, 1}),
        ),
        seed=seed, params=params,
    )
    sim.set_protocol_all(protocol)
    sim.run()
    return sim


class TestReplay:
    def test_shared_coin_replays_identically(self):
        params = ProtocolParams(n=N, f=F)
        protocol = lambda ctx: shared_coin(ctx, 0)
        pki, original, trace = record_run(protocol, params)
        replayed = replay_run(protocol, params, pki, trace.delivery_order())
        assert replayed.returns == original.returns
        assert replayed.deliveries == original.deliveries
        assert replayed.metrics.words_correct == original.metrics.words_correct

    def test_whp_coin_replays_identically(self):
        params = ProtocolParams.simulation_scale(n=N, f=F, lam=10, d=0.05)
        protocol = lambda ctx: whp_coin(ctx, 0)
        pki, original, trace = record_run(protocol, params)
        replayed = replay_run(protocol, params, pki, trace.delivery_order())
        assert replayed.returns == original.returns

    def test_divergent_replay_detected(self):
        params = ProtocolParams(n=N, f=F)
        protocol = lambda ctx: shared_coin(ctx, 0)
        pki, _, trace = record_run(protocol, params)
        order = trace.delivery_order()
        # Corrupt the schedule: demand a delivery on a link that will not
        # have a message at that point.
        order[5] = (order[5][1], order[5][0])
        broken = [order[i] if i != 5 else (N - 1, N - 1) for i in range(len(order))]
        with pytest.raises(RuntimeError, match="diverged|exhausted"):
            replay_run(protocol, params, pki, broken)

    def test_replay_scheduler_declines_batched_drain(self):
        """A replay schedule cannot promise submission-insensitive
        batches, so it must return None from ``drain`` -- that is what
        makes ``delivery_mode='batched'`` fall back to the classic step
        instead of diverging (see the batched-kernel equivalence
        tests)."""
        scheduler = ReplayScheduler([(0, 1), (1, 0)], seqs=[0, 1])
        assert scheduler.drain(pool=None, limit=8) is None
