"""Pure-unit scheduler tests (no simulation kernel)."""

from __future__ import annotations

import random

import pytest

from repro.sim.adversary import (
    Adversary,
    PartitionScheduler,
    ReplayScheduler,
    ScriptedScheduleError,
    ScriptedScheduler,
)
from repro.sim.byzantine import SilentBehavior
from repro.sim.messages import EnvelopeView


def view(seq, sender, dest, kind="Msg"):
    return EnvelopeView(
        seq=seq, sender=sender, dest=dest, instance="i", kind=kind, depth=1
    )


class FakePool:
    """Only seq_at/len are exercised by the schedulers under test."""

    def __init__(self, seqs):
        self.seqs = list(seqs)

    def __len__(self):
        return len(self.seqs)

    def seq_at(self, index):
        return self.seqs[index]


class TestPartitionMerge:
    def test_cross_bucket_merges_at_heal(self):
        scheduler = PartitionScheduler({0}, heal_after=2, rng=random.Random(1))
        scheduler.on_submit(10, view(10, 0, 1))  # cross
        scheduler.on_submit(11, view(11, 1, 2))  # intra
        assert len(scheduler._cross) == 1
        scheduler.on_delivered(11)
        scheduler.on_delivered(99)
        assert scheduler.healed
        # First post-heal choice triggers the merge; the cross message is
        # now eligible from the common pool.
        chosen = scheduler.choose(FakePool([10]))
        assert chosen == 10
        assert len(scheduler._cross) == 0

    def test_pre_heal_prefers_intra(self):
        scheduler = PartitionScheduler({0}, heal_after=10**9, rng=random.Random(2))
        scheduler.on_submit(10, view(10, 0, 1))  # cross
        scheduler.on_submit(11, view(11, 1, 2))  # intra
        assert scheduler.choose(FakePool([10, 11])) == 11

    def test_drained_side_releases_cross(self):
        scheduler = PartitionScheduler({0}, heal_after=10**9, rng=random.Random(3))
        scheduler.on_submit(10, view(10, 0, 1))  # cross only
        assert scheduler.choose(FakePool([10])) == 10


class TestScriptedScheduler:
    def test_choices_index_modulo_pool(self):
        scheduler = ScriptedScheduler([0, 5, 1])
        pool = FakePool([100, 200, 300])
        assert scheduler.choose(pool) == 100   # 0 % 3
        assert scheduler.choose(pool) == 300   # 5 % 3
        assert scheduler.choose(pool) == 200   # 1 % 3

    def test_exhausted_script_falls_back_to_first(self):
        scheduler = ScriptedScheduler([])
        assert scheduler.choose(FakePool([42, 43])) == 42

    def test_choices_and_seqs_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ScriptedScheduler([0, 1], seqs=[10, 11])


class TestScriptedSchedulerSeqMode:
    def test_seq_mode_delivers_the_named_seqs(self):
        scheduler = ScriptedScheduler(seqs=[11, 10])
        scheduler.on_submit(10, None)
        scheduler.on_submit(11, None)
        assert scheduler.choose(FakePool([10, 11])) == 11
        scheduler.on_delivered(11)
        assert scheduler.choose(FakePool([10])) == 10

    def test_exhausted_seqs_fall_back_to_first(self):
        scheduler = ScriptedScheduler(seqs=[10])
        scheduler.on_submit(10, None)
        scheduler.on_submit(11, None)
        assert scheduler.choose(FakePool([10, 11])) == 10
        scheduler.on_delivered(10)
        assert scheduler.choose(FakePool([11])) == 11

    def test_already_delivered_seq_names_the_script_step(self):
        scheduler = ScriptedScheduler(seqs=[10, 10])
        scheduler.on_submit(10, None)
        assert scheduler.choose(FakePool([10])) == 10
        scheduler.on_delivered(10)
        with pytest.raises(
            ScriptedScheduleError,
            match=r"script step 1 names seq 10, which was already delivered",
        ):
            scheduler.choose(FakePool([11]))

    def test_never_submitted_seq_names_the_step_and_hints(self):
        scheduler = ScriptedScheduler(seqs=[99])
        scheduler.on_submit(10, None)
        scheduler.on_submit(11, None)
        with pytest.raises(
            ScriptedScheduleError,
            match=r"script step 0 names seq 99, which was never submitted "
                  r"\(highest submitted seq so far: 11\)",
        ):
            scheduler.choose(FakePool([10, 11]))

    def test_never_submitted_with_empty_pool_history(self):
        scheduler = ScriptedScheduler(seqs=[7])
        with pytest.raises(
            ScriptedScheduleError,
            match=r"highest submitted seq so far: none",
        ):
            scheduler.choose(FakePool([]))

    def test_submit_range_counts_as_submitted(self):
        scheduler = ScriptedScheduler(seqs=[12])
        scheduler.on_submit_range(10, 15)
        assert scheduler.choose(FakePool([10, 11, 12, 13, 14])) == 12


class TestReplaySchedulerUnits:
    def test_per_link_fifo(self):
        scheduler = ReplayScheduler([(0, 1), (0, 1)])
        scheduler.on_submit(10, view(10, 0, 1))
        scheduler.on_submit(11, view(11, 0, 1))
        assert scheduler.choose(FakePool([10, 11])) == 10
        assert scheduler.choose(FakePool([11])) == 11

    def test_missing_link_raises(self):
        scheduler = ReplayScheduler([(3, 4)])
        scheduler.on_submit(10, view(10, 0, 1))
        with pytest.raises(RuntimeError, match="diverged"):
            scheduler.choose(FakePool([10]))

    def test_exhausted_schedule_raises(self):
        scheduler = ReplayScheduler([])
        scheduler.on_submit(10, view(10, 0, 1))
        with pytest.raises(RuntimeError, match="exhausted"):
            scheduler.choose(FakePool([10]))


class TestAdversaryDefaults:
    def test_default_behavior_is_silent(self):
        adversary = Adversary()
        assert isinstance(adversary.behavior_factory(3), SilentBehavior)

    def test_default_corruption_is_none(self):
        adversary = Adversary()
        assert adversary.corruption.initial_corruptions(10, 3) == set()
