"""Unit tests for the batched-delivery kernel machinery.

Covers the scheduler ``drain``/``on_submit_range`` contracts, the
mailbox's per-instance delivery counters, the ``Wait.min_count``
incremental-quorum gate, and the broadcast submission fast path --
each against its documented contract (see DESIGN.md section 10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.crypto.pki import PKI
from repro.sim.adversary import (
    Adversary,
    DelayBoundedScheduler,
    FIFOScheduler,
    RandomScheduler,
    Scheduler,
    StaticCorruption,
)
from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.network import Simulation
from repro.sim.process import Wait


@dataclass
class Note(Message):
    body: object = None

    def words(self) -> int:
        return 1


def make_sim(n=4, seed=0, scheduler=None, **kwargs):
    pki = PKI.create(n, rng=random.Random(seed))
    return Simulation(
        n=n, f=0, pki=pki,
        adversary=Adversary(
            scheduler=scheduler or RandomScheduler(random.Random(seed))
        ),
        seed=seed, **kwargs,
    )


# -- scheduler drain / on_submit_range ---------------------------------------


class TestFIFODrain:
    def test_drain_matches_choose_sequence(self):
        """drain(limit) must return exactly what `limit` choose/on_delivered
        cycles would have -- the batched-kernel contract."""
        reference = FIFOScheduler()
        draining = FIFOScheduler()
        for seq in range(10):
            reference.on_submit(seq, None)
            draining.on_submit(seq, None)
        expected = []
        for _ in range(6):
            seq = reference.choose(None)
            reference.on_delivered(seq)
            expected.append(seq)
        assert draining.drain(None, 6) == expected

    def test_drain_respects_limit_and_continues(self):
        scheduler = FIFOScheduler()
        scheduler.on_submit_range(0, 8)
        assert scheduler.drain(None, 3) == [0, 1, 2]
        assert scheduler.drain(None, 3) == [3, 4, 5]
        assert scheduler.drain(None, 99) == [6, 7]
        assert scheduler.drain(None, 1) is None  # empty -> decline

    def test_drain_skips_already_delivered(self):
        scheduler = FIFOScheduler()
        scheduler.on_submit_range(0, 4)
        seq = scheduler.choose(None)
        scheduler.on_delivered(seq)
        assert scheduler.drain(None, 10) == [1, 2, 3]

    def test_on_submit_range_equals_per_seq(self):
        bulk = FIFOScheduler()
        single = FIFOScheduler()
        bulk.on_submit_range(5, 9)
        for seq in range(5, 9):
            single.on_submit(seq, None)
        assert list(bulk._queue) == list(single._queue)


class TestDelayBoundedDrain:
    def test_on_submit_range_matches_per_seq_including_rng(self):
        """The bulk hook must leave the scheduler -- and its RNG -- in
        exactly the state the per-seq calls would."""
        bulk = DelayBoundedScheduler(max_delay=7, rng=random.Random(42))
        single = DelayBoundedScheduler(max_delay=7, rng=random.Random(42))
        bulk.on_submit_range(0, 20)
        for seq in range(20):
            single.on_submit(seq, None)
        assert sorted(bulk._heap) == sorted(single._heap)
        assert bulk.rng.getstate() == single.rng.getstate()

    def test_drain_matches_choose_sequence(self):
        reference = DelayBoundedScheduler(max_delay=5, rng=random.Random(9))
        draining = DelayBoundedScheduler(max_delay=5, rng=random.Random(9))
        for seq in range(30):
            reference.on_submit(seq, None)
            draining.on_submit(seq, None)
        expected = []
        for _ in range(12):
            seq = reference.choose(None)
            reference.on_delivered(seq)
            expected.append(seq)
        assert draining.drain(None, 12) == expected

    def test_drain_stops_at_preemption_bound(self):
        """Entries ranked at/above the next-unseen-seq bound stay in the
        heap: a future submission could still overtake them."""
        scheduler = DelayBoundedScheduler(max_delay=1000, rng=random.Random(0))
        scheduler.on_submit_range(0, 5)
        batch = scheduler.drain(None, 100) or []
        bound = scheduler._next_seq_bound
        drained_ranks = {seq for seq in batch}
        for rank, seq in scheduler._heap:
            assert rank >= bound
            assert seq not in drained_ranks

    def test_max_delay_zero_is_fifo(self):
        scheduler = DelayBoundedScheduler(max_delay=0, rng=random.Random(3))
        scheduler.on_submit_range(0, 6)
        assert scheduler.drain(None, 10) == [0, 1, 2, 3, 4, 5]


class TestSchedulerBase:
    def test_default_on_submit_range_delegates(self):
        calls = []

        class Recorder(Scheduler):
            def on_submit(self, seq, view):
                calls.append(seq)

            def choose(self, pool):  # pragma: no cover - unused
                raise NotImplementedError

        Recorder().on_submit_range(3, 7)
        assert calls == [3, 4, 5, 6]

    def test_random_scheduler_declines_drain(self):
        """A uniformly random scheduler cannot commit a batch (each
        submission reweights every later draw), so it must decline."""
        scheduler = RandomScheduler(random.Random(0))
        scheduler.on_submit(0, None)
        assert scheduler.drain(None, 4) is None


# -- mailbox counters --------------------------------------------------------


class TestMailboxCounters:
    def test_counts_maintained_on_add(self):
        mailbox = Mailbox()
        mailbox.add(0, Note("a"))
        mailbox.add(1, Note("a"))
        mailbox.add(2, Note("b"))
        assert mailbox.counts == {"a": 2, "b": 1}
        assert mailbox.total_delivered == 3

    def test_total_for_sums_subscribed_instances(self):
        mailbox = Mailbox()
        for instance in ("a", "a", "b", "c"):
            mailbox.add(0, Note(instance))
        assert mailbox.total_for({"a", "b"}) == 3
        assert mailbox.total_for({"c"}) == 1
        assert mailbox.total_for({"missing"}) == 0


# -- Wait.min_count incremental-quorum gate ----------------------------------


class TestMinCountGate:
    def _run(self, min_count, eager=False):
        """Process 0 waits for 3 Notes on one instance; 1..3 each send one.
        Returns the mailbox totals seen at each condition evaluation."""
        observed = []

        def waiter(ctx):
            def condition(mailbox):
                observed.append(mailbox.total_for({"x"}))
                stream = mailbox.stream("x")
                return True if len(stream) >= 3 else None

            result = yield Wait(
                condition, description="3 notes",
                instances={"x"}, min_count=min_count,
            )
            return result

        def sender(ctx):
            ctx.send(0, Note("x"))
            return None
            yield

        sim = make_sim(scheduler=FIFOScheduler(), eager_wakeups=eager)
        sim.set_protocol(0, waiter)
        for pid in (1, 2, 3):
            sim.set_protocol(pid, sender)
        sim.run()
        assert sim.returns[0] is True
        return observed

    def test_gate_skips_below_floor(self):
        """After the block-time probe (always evaluated: the condition may
        already be satisfiable from buffered messages), the condition is
        never re-invoked while the subscribed instance holds fewer than
        min_count messages."""
        observed = self._run(min_count=3)
        assert observed[0] == 0  # the block-time probe
        assert observed[1:], "condition never re-evaluated"
        assert all(total >= 3 for total in observed[1:])

    def test_no_floor_evaluates_incrementally(self):
        observed = self._run(min_count=0)
        assert {1, 2} <= set(observed)  # woken below the quorum

    def test_eager_wakeups_ignore_floor(self):
        """The eager reference path bypasses gating entirely -- and the
        protocol still returns the same result."""
        observed = self._run(min_count=3, eager=True)
        assert {1, 2} <= set(observed)

    def test_batched_mode_honours_floor(self):
        observed = []

        def waiter(ctx):
            def condition(mailbox):
                observed.append(mailbox.total_for({"x"}))
                return True if len(mailbox.stream("x")) >= 3 else None

            return (yield Wait(condition, instances={"x"}, min_count=3))

        def sender(ctx):
            ctx.send(0, Note("x"))
            return None
            yield

        sim = make_sim(scheduler=FIFOScheduler(), delivery_mode="batched")
        sim.set_protocol(0, waiter)
        for pid in (1, 2, 3):
            sim.set_protocol(pid, sender)
        sim.run()
        assert sim.returns[0] is True
        assert all(total >= 3 for total in observed[1:])


# -- broadcast submission fast path ------------------------------------------


class TestSubmitBroadcast:
    def test_broadcast_delivers_one_shared_object(self):
        """ctx.broadcast hands the *same* message object to every receiver
        -- the identity the cross-receiver validation memos key on."""
        received = {}

        def talker(ctx):
            if ctx.pid == 0:
                ctx.broadcast(Note("x", body="payload"))

            def condition(mailbox):
                stream = mailbox.stream("x")
                return stream[0][1] if stream else None

            return (yield Wait(condition, instances={"x"}))

        sim = make_sim(scheduler=FIFOScheduler())
        sim.set_protocol_all(talker)
        sim.run()
        received = {id(sim.returns[pid]) for pid in range(4)}
        assert len(received) == 1  # one object, n receivers

    def test_broadcast_metrics_match_per_dest_submits(self):
        """submit_broadcast's batched accounting must equal n unicasts."""

        def broadcaster(ctx):
            ctx.broadcast(Note("x"))
            return None
            yield

        def unicaster(ctx):
            for dest in range(4):
                ctx.send(dest, Note("x"))
            return None
            yield

        def idle(ctx):
            return None
            yield

        def run_with(factory):
            sim = make_sim(scheduler=FIFOScheduler())
            sim.set_protocol(0, factory)
            for pid in (1, 2, 3):
                sim.set_protocol(pid, idle)
            sim.run()
            metrics = sim.metrics
            return (
                metrics.messages_sent_total,
                metrics.messages_delivered,
                metrics.words_total,
                dict(metrics.words_by_kind),
                dict(metrics.words_by_sender),
                dict(metrics.messages_by_sender),
            )

        broadcast_counters = run_with(broadcaster)
        assert broadcast_counters == run_with(unicaster)
        # The hoisted accounting really attributed the load to pid 0.
        assert broadcast_counters[4] == {0: 4 * Note("x").words()}

    def test_broadcast_invalid_sender_rejected(self):
        sim = make_sim()
        with pytest.raises(ValueError, match="invalid sender"):
            sim.submit_broadcast(-1, Note("x"))
        with pytest.raises(ValueError, match="invalid sender"):
            sim.submit_broadcast(4, Note("x"))


# -- batched mode fallback ----------------------------------------------------


class TestBatchedFallback:
    def test_random_scheduler_falls_back_to_classic_step(self):
        """delivery_mode='batched' under a drain-declining scheduler must
        still run (classic one-choose-per-delivery) and agree byte-for-byte
        with the classic mode."""

        def chatter(ctx):
            ctx.broadcast(Note("x"))

            def condition(mailbox):
                return True if len(mailbox.stream("x")) >= 4 else None

            return (yield Wait(condition, instances={"x"}))

        def run_mode(mode):
            sim = make_sim(scheduler=RandomScheduler(random.Random(5)), seed=5,
                           delivery_mode=mode)
            sim.set_protocol_all(chatter)
            sim.run()
            return sim.returns, sim.deliveries, sim.metrics.words_total

        assert run_mode("batched") == run_mode("classic")

    def test_invalid_delivery_mode_rejected(self):
        with pytest.raises(ValueError, match="delivery_mode"):
            make_sim(delivery_mode="turbo")
