"""Event tracing: ordering facts the aggregate metrics cannot express."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.pki import PKI
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.events import PayloadSummary
from repro.sim.network import Simulation
from repro.sim.trace import TraceEvent, TraceRecorder, attach_trace


def run_traced_coin(n=10, f=2, seed=3):
    pki = PKI.create(n, rng=random.Random(seed))
    sim = Simulation(
        n=n, f=f, pki=pki,
        adversary=Adversary(
            scheduler=RandomScheduler(random.Random(seed)),
            corruption=StaticCorruption(set(range(f))),
        ),
        seed=seed, params=ProtocolParams(n=n, f=f),
    )
    trace = attach_trace(sim)
    sim.set_protocol_all(lambda ctx: shared_coin(ctx, 0))
    sim.run()
    return sim, trace


class TestTraceRecorder:
    def test_queries(self):
        recorder = TraceRecorder()
        recorder.record(TraceEvent(step=0, kind="send", pid=1, peer=2))
        recorder.record(TraceEvent(step=1, kind="deliver", pid=2, peer=1))
        recorder.record(TraceEvent(step=1, kind="decide", pid=2, detail=0))
        assert len(recorder) == 3
        assert len(recorder.of_kind("send")) == 1
        assert len(recorder.for_process(2)) == 2
        assert recorder.first("decide", pid=2).detail == 0
        assert recorder.first("decide", pid=7) is None

    def test_render_truncates(self):
        recorder = TraceRecorder()
        for i in range(60):
            recorder.record(TraceEvent(step=i, kind="send", pid=0, peer=1))
        text = recorder.render(limit=10)
        assert "50 more events" in text


class TestAttachedTrace:
    def test_counts_match_metrics(self):
        sim, trace = run_traced_coin()
        assert len(trace.of_kind("send")) == sim.metrics.messages_sent_total
        assert len(trace.of_kind("deliver")) == sim.metrics.messages_delivered

    def test_corruptions_recorded(self):
        sim, trace = run_traced_coin()
        corrupted = {event.pid for event in trace.of_kind("corrupt")}
        assert corrupted == sim.corrupted == {0, 1}

    def test_second_sent_after_first_quorum(self):
        """Protocol-order fact: every correct process's SECOND broadcast
        happens only after it delivered n-f FIRST messages."""
        sim, trace = run_traced_coin()
        quorum = sim.n - sim.f
        for pid in sim.correct_pids:
            second_sends = trace.sends_by(pid, "SecondMsg")
            assert second_sends  # every correct process reaches phase 2
            first_send_step = second_sends[0].step
            firsts_before = [
                event
                for event in trace.of_kind("deliver")
                if event.pid == pid
                and event.message_kind == "FirstMsg"
                and event.step <= first_send_step
            ]
            assert len(firsts_before) >= quorum

    def test_send_events_carry_instance(self):
        _, trace = run_traced_coin()
        sends = trace.of_kind("send")
        assert all(event.instance == ("shared_coin", 0) for event in sends)

    def test_attach_is_idempotent(self):
        """Attaching twice must not double-record every event."""
        pki = PKI.create(10, rng=random.Random(3))
        sim = Simulation(
            n=10, f=2, pki=pki,
            adversary=Adversary(
                scheduler=RandomScheduler(random.Random(3)),
                corruption=StaticCorruption({0, 1}),
            ),
            seed=3, params=ProtocolParams(n=10, f=2),
        )
        first = attach_trace(sim)
        second = attach_trace(sim)
        assert second is first
        sim.set_protocol_all(lambda ctx: shared_coin(ctx, 0))
        sim.run()
        assert len(first.of_kind("deliver")) == sim.metrics.messages_delivered

    def test_deliver_detail_is_immutable_summary(self):
        """The detail field snapshots the payload instead of aliasing it."""
        _, trace = run_traced_coin()
        deliver = trace.of_kind("deliver")[0]
        summary = deliver.detail
        assert isinstance(summary, PayloadSummary)
        assert summary.kind == deliver.message_kind
        assert summary.instance == deliver.instance
        assert summary.words > 0
        assert summary.kind in summary.text
        with pytest.raises(dataclasses.FrozenInstanceError):
            summary.words = 0
