"""Simulation kernel: delivery, waits, corruption, stop conditions.

These tests use tiny hand-written protocols rather than the real
algorithms, so kernel behaviour is pinned independently of protocol logic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.crypto.pki import PKI
from repro.sim.adversary import (
    AdaptiveFirstSpeakersCorruption,
    Adversary,
    FIFOScheduler,
    RandomScheduler,
    StaticCorruption,
)
from repro.sim.byzantine import ScriptedBehavior, SilentBehavior
from repro.sim.messages import Message
from repro.sim.network import Simulation
from repro.sim.process import Wait
from repro.sim.runner import RunResult, run_protocol, stop_when_all_returned


@dataclass
class Ping(Message):
    payload: int = 0

    def words(self) -> int:
        return 1


def make_sim(n=4, f=0, seed=0, corrupt=(), scheduler=None, **kwargs):
    pki = PKI.create(n, rng=random.Random(seed))
    adversary = Adversary(
        scheduler=scheduler or RandomScheduler(random.Random(seed)),
        corruption=StaticCorruption(corrupt),
    )
    return Simulation(n=n, f=f, pki=pki, adversary=adversary, seed=seed, **kwargs)


def gossip_protocol(ctx):
    """Broadcast one ping; return the set of senders heard from."""
    ctx.broadcast(Ping("gossip", payload=ctx.pid))
    senders = set()
    cursor = 0

    def all_heard(mailbox):
        nonlocal cursor
        stream = mailbox.stream("gossip")
        while cursor < len(stream):
            sender, _ = stream[cursor]
            cursor += 1
            senders.add(sender)
        if len(senders) >= ctx.n:
            return frozenset(senders)
        return None

    return (yield Wait(all_heard))


class TestDelivery:
    def test_reliable_links_deliver_everything(self):
        sim = make_sim(n=5)
        sim.set_protocol_all(gossip_protocol)
        sim.run()
        assert all(sim.returns[pid] == frozenset(range(5)) for pid in range(5))
        # 5 processes broadcast to 5 destinations each.
        assert sim.metrics.messages_delivered == 25

    def test_self_delivery_counts(self):
        sim = make_sim(n=1)
        sim.set_protocol_all(gossip_protocol)
        sim.run()
        assert sim.returns[0] == frozenset({0})

    def test_same_seed_same_run(self):
        results = []
        for _ in range(2):
            sim = make_sim(n=6, seed=9)
            sim.set_protocol_all(gossip_protocol)
            sim.run()
            results.append((sim.deliveries, dict(sim.returns)))
        assert results[0] == results[1]

    def test_invalid_destination_rejected(self):
        sim = make_sim(n=3)

        def bad(ctx):
            ctx.send(7, Ping("x"))
            return None
            yield

        sim.set_protocol(0, bad)
        sim.set_protocol(1, gossip_protocol)
        sim.set_protocol(2, gossip_protocol)
        with pytest.raises(ValueError):
            sim.run()

    def test_missing_protocol_rejected(self):
        sim = make_sim(n=2)
        sim.set_protocol(0, gossip_protocol)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_simulation_runs_once(self):
        sim = make_sim(n=2)
        sim.set_protocol_all(gossip_protocol)
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()


class TestWaitConditions:
    def test_immediate_condition_never_blocks(self):
        sim = make_sim(n=2)

        def instant(ctx):
            value = yield Wait(lambda mailbox: "done")
            return value

        sim.set_protocol_all(instant)
        sim.run()
        assert sim.returns == {0: "done", 1: "done"}

    def test_buffered_messages_satisfy_new_waits(self):
        # A process that yields *after* messages arrived must still see them.
        sim = make_sim(n=3, seed=3)

        def late_waiter(ctx):
            ctx.broadcast(Ping("g", payload=ctx.pid))
            # First wait: everything from pid 0 only.
            got = yield Wait(
                lambda mailbox: True if mailbox.count("g") >= 3 else None
            )
            # Second wait over the same instance, starting from scratch.
            count = yield Wait(
                lambda mailbox: mailbox.count("g") if mailbox.count("g") >= 3 else None
            )
            return (got, count)

        sim.set_protocol_all(late_waiter)
        sim.run()
        assert all(value[0] is True and value[1] >= 3 for value in sim.returns.values())

    def test_deadlock_detected(self):
        sim = make_sim(n=2)

        def waits_forever(ctx):
            yield Wait(lambda mailbox: None)

        sim.set_protocol_all(waits_forever)
        sim.run()
        assert sim.deadlocked
        assert not sim.exhausted

    def test_max_deliveries_flags_exhaustion(self):
        sim = make_sim(n=3, max_deliveries=4)

        def chatter(ctx):
            ctx.broadcast(Ping("c"))
            seen = 0

            def got_new(mailbox):
                nonlocal seen
                if mailbox.total_delivered > seen:
                    seen = mailbox.total_delivered
                    return True
                return None

            while True:
                yield Wait(got_new)
                ctx.broadcast(Ping("c"))

        sim.set_protocol_all(chatter)
        sim.run()
        assert sim.exhausted

    def test_stop_condition_halts_early(self):
        sim = make_sim(
            n=3,
            stop_condition=lambda s: 0 in s.decided,
        )

        def decider(ctx):
            ctx.broadcast(Ping("d"))
            yield Wait(lambda mailbox: mailbox.total_delivered or None)
            ctx.decide("v")
            yield Wait(lambda mailbox: None)  # never returns

        sim.set_protocol_all(decider)
        sim.run()
        assert sim.stopped_by_condition
        assert not sim.deadlocked


class TestCorruption:
    def test_static_corruption_installs_behavior(self):
        sim = make_sim(n=4, f=2, corrupt={0, 1})
        sim.set_protocol_all(gossip_protocol)
        sim.run()
        # Correct processes still hear from everyone *correct*; byzantine
        # are silent, so the gossip wait can never complete -> deadlock.
        assert sim.deadlocked
        assert sim.corrupted == {0, 1}

    def test_corruption_budget_enforced(self):
        sim = make_sim(n=4, f=1, corrupt={0, 1, 2})
        sim.set_protocol_all(gossip_protocol)
        sim.run()
        assert len(sim.corrupted) == 1

    def test_adaptive_corruption_caps_at_f(self):
        pki = PKI.create(5, rng=random.Random(0))
        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(0)),
            corruption=AdaptiveFirstSpeakersCorruption(),
        )
        sim = Simulation(n=5, f=2, pki=pki, adversary=adversary, seed=0)
        sim.set_protocol_all(gossip_protocol)
        sim.run()
        assert len(sim.corrupted) == 2

    def test_no_after_the_fact_removal(self):
        # Messages sent while correct are delivered even after corruption.
        pki = PKI.create(3, rng=random.Random(0))
        adversary = Adversary(
            scheduler=FIFOScheduler(),
            corruption=AdaptiveFirstSpeakersCorruption(),
        )
        sim = Simulation(n=3, f=1, pki=pki, adversary=adversary, seed=0)
        sim.set_protocol_all(gossip_protocol)
        sim.run()
        survivors = [pid for pid in range(3) if pid not in sim.corrupted]
        # The corrupted process broadcast before being corrupted, so every
        # correct process still heard from all 3 senders.
        for pid in survivors:
            assert sim.returns[pid] == frozenset(range(3))

    def test_byzantine_behavior_can_send(self):
        flood = ScriptedBehavior(
            on_start=lambda ctx: ctx.broadcast(Ping("gossip", payload=-1))
        )
        pki = PKI.create(3, rng=random.Random(0))
        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(0)),
            corruption=StaticCorruption({2}),
            behavior_factory=lambda pid: flood,
        )
        sim = Simulation(n=3, f=1, pki=pki, adversary=adversary, seed=0)
        sim.set_protocol_all(gossip_protocol)
        sim.run()
        assert sim.returns[0] == frozenset(range(3))

    def test_words_from_byzantine_not_counted(self):
        flood = ScriptedBehavior(
            on_start=lambda ctx: [ctx.broadcast(Ping("gossip")) for _ in range(10)]
        )
        pki = PKI.create(3, rng=random.Random(0))
        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(0)),
            corruption=StaticCorruption({2}),
            behavior_factory=lambda pid: flood,
        )
        sim = Simulation(n=3, f=1, pki=pki, adversary=adversary, seed=0)
        sim.set_protocol_all(gossip_protocol)
        sim.run()
        # Only the two correct broadcasts count: 2 senders * 3 dests * 1 word.
        assert sim.metrics.words_correct == 6
        assert sim.metrics.words_total == 6 + 30


class TestCausalDepth:
    def test_depth_grows_along_chains(self):
        sim = make_sim(n=2, scheduler=FIFOScheduler())

        def relay(ctx):
            if ctx.pid == 0:
                ctx.send(1, Ping("hop", payload=0))
                yield Wait(lambda mailbox: True if mailbox.count("hop2") else None)
                ctx.decide("done")
                return "initiator"
            yield Wait(lambda mailbox: True if mailbox.count("hop") else None)
            ctx.send(0, Ping("hop2"))
            ctx.decide("done")
            return "responder"

        sim.set_protocol_all(relay)
        sim.run()
        # pid 1 decided at depth 1 (one hop), pid 0 at depth 2 (two hops).
        assert sim.contexts[1].decision_depth == 1
        assert sim.contexts[0].decision_depth == 2


class TestBackgroundHandlers:
    def test_handler_sees_backlog_and_future(self):
        sim = make_sim(n=3, seed=5)
        seen: dict[int, list[int]] = {}

        def protocol(ctx):
            ctx.broadcast(Ping("bg", payload=ctx.pid))
            # Wait for one message first so there is a backlog when the
            # handler is registered.
            yield Wait(lambda mailbox: True if mailbox.count("bg") >= 1 else None)
            log = seen.setdefault(ctx.pid, [])
            cursor = 0

            def handler(mailbox):
                nonlocal cursor
                stream = mailbox.stream("bg")
                while cursor < len(stream):
                    sender, _ = stream[cursor]
                    cursor += 1
                    log.append(sender)

            ctx.add_background_handler(handler)
            yield Wait(lambda mailbox: True if mailbox.count("bg") >= 3 else None)
            return sorted(log)

        sim.set_protocol_all(protocol)
        sim.run()
        for pid in range(3):
            assert sim.returns[pid] == [0, 1, 2]


class TestDecisions:
    def test_decision_is_irrevocable(self):
        sim = make_sim(n=1)

        def flip_flop(ctx):
            ctx.decide(0)
            ctx.decide(0)  # idempotent re-decide is fine
            with pytest.raises(RuntimeError):
                ctx.decide(1)
            return "ok"
            yield

        sim.set_protocol_all(flip_flop)
        sim.run()
        assert sim.returns[0] == "ok"
        assert sim.contexts[0].decision == 0
