"""Chrome trace-event export: structure, pairing, and flow integrity."""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.experiments.protocols import make_runner
from repro.sim.flightrecorder import FlightRecorder, save_recording, load_recording
from repro.sim.runner import run_protocol, stop_when_all_decided
from repro.sim.traceexport import (
    chrome_trace_events,
    export_chrome_trace,
    save_chrome_trace,
)

N, SEED = 16, 4


@pytest.fixture(scope="module")
def recording(tmp_path_factory):
    factory, params, f = make_runner("whp_ba", N, seed=SEED)
    recorder = FlightRecorder()
    result = run_protocol(
        N, f, factory, corrupt=set(range(f)), params=params,
        stop_condition=stop_when_all_decided, seed=SEED,
        subscribers=[recorder.on_event],
    )
    path = save_recording(
        tmp_path_factory.mktemp("trace") / "run.jsonl", recorder, result
    )
    return load_recording(path)


class TestTraceStructure:
    def test_export_is_json_and_loadable(self, recording):
        trace = export_chrome_trace(recording)
        text = json.dumps(trace)
        again = json.loads(text)
        assert again["traceEvents"]
        assert again["otherData"]["n"] == N
        assert again["displayTimeUnit"] == "ms"

    def test_metadata_names_every_process(self, recording):
        events = chrome_trace_events(recording.events, recording.header)
        thread_meta = [
            e for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert {e["tid"] for e in thread_meta} == set(range(N))
        corrupted = set(recording.header["corrupted"])
        for meta in thread_meta:
            labelled = "(corrupted)" in meta["args"]["name"]
            assert labelled == (meta["tid"] in corrupted)

    def test_timestamps_are_monotonic(self, recording):
        events = chrome_trace_events(recording.events, recording.header)
        stamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert stamps == sorted(stamps)

    def test_phase_spans_nest_validly_per_process(self, recording):
        """Never more closes than opens; unclosed spans only from the
        harness stopping the (forever-looping) BA mid-round -- at most
        one in-flight span per nesting level per process."""
        events = chrome_trace_events(recording.events, recording.header)
        opens = Counter(
            (e["tid"], e["name"]) for e in events
            if e["ph"] == "B" and e["cat"] == "phase"
        )
        closes = Counter(
            (e["tid"], e["name"]) for e in events
            if e["ph"] == "E" and e["cat"] == "phase"
        )
        assert opens  # spans actually exported
        for key, count in opens.items():
            assert closes[key] <= count
            assert count - closes[key] <= 1  # one cut-short span at most
        assert sum(closes.values()) > 0

    def test_flow_arrows_pair_sends_with_deliveries(self, recording):
        events = chrome_trace_events(recording.events, recording.header)
        starts = {e["id"] for e in events if e["ph"] == "s"}
        finishes = [e["id"] for e in events if e["ph"] == "f"]
        # Every delivery's flow arrow originates at a recorded send.
        assert finishes
        assert set(finishes) <= starts
        # seq ids are unique per send.
        sends = [e["id"] for e in events if e["ph"] == "s"]
        assert len(sends) == len(set(sends))

    def test_decides_exported_as_instants(self, recording):
        events = chrome_trace_events(recording.events, recording.header)
        decides = [e for e in events if e.get("cat") == "decision"]
        assert decides
        assert all(e["ph"] == "i" for e in decides)
        corrupted = set(recording.header["corrupted"])
        assert {e["tid"] for e in decides} == set(range(N)) - corrupted


class TestSaveChromeTrace:
    def test_writes_loadable_file(self, recording, tmp_path):
        path = save_chrome_trace(tmp_path / "run.trace.json", recording)
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]
        assert trace["otherData"]["deliveries"] == recording.summary["deliveries"]
