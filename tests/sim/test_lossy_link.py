"""Lossy-link fault injection: config validation, fates, determinism.

The lossy layer is a documented *extension* of the paper's reliable-link
model (DESIGN.md section 13): every submitted message gets at most one
fate -- drop, duplicate, reorder, bit-corrupt -- decided purely from the
run seed and the envelope seq.  These tests pin the contract the fuzzer
depends on: an inactive config is byte-invisible, fates are
deterministic and replayable, and batched delivery declines to the
classic stepping loop when a lossy config is active.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.crypto.pki import PKI
from repro.sim.adversary import (
    Adversary,
    FIFOScheduler,
    RandomScheduler,
    ReplayScheduler,
    StaticCorruption,
)
from repro.sim.events import event_to_record
from repro.sim.flightrecorder import FlightRecorder
from repro.sim.messages import Message
from repro.sim.network import LossyLinkConfig, Simulation
from repro.sim.process import Wait


@dataclass
class Ping(Message):
    payload: int = 0

    def words(self) -> int:
        return 1


def make_sim(n=4, seed=0, scheduler=None, **kwargs):
    pki = PKI.create(n, rng=random.Random(seed))
    adversary = Adversary(
        scheduler=scheduler or RandomScheduler(random.Random(seed)),
        corruption=StaticCorruption(set()),
    )
    return Simulation(n=n, f=0, pki=pki, adversary=adversary, seed=seed, **kwargs)


def gossip_protocol(ctx):
    ctx.broadcast(Ping("gossip", payload=ctx.pid))
    senders = set()
    cursor = 0

    def all_heard(mailbox):
        nonlocal cursor
        stream = mailbox.stream("gossip")
        while cursor < len(stream):
            sender, _ = stream[cursor]
            cursor += 1
            senders.add(sender)
        if len(senders) >= ctx.n:
            return frozenset(senders)
        return None

    return (yield Wait(all_heard))


def tagged_gossip_protocol(ctx):
    """Like gossip, but returns the (sender, payload) pairs received."""
    ctx.broadcast(Ping("gossip", payload=ctx.pid))
    seen = []
    cursor = 0

    def all_heard(mailbox):
        nonlocal cursor
        stream = mailbox.stream("gossip")
        while cursor < len(stream):
            sender, message = stream[cursor]
            cursor += 1
            seen.append((sender, message.payload))
        if len(seen) >= ctx.n:
            return tuple(sorted(seen))
        return None

    return (yield Wait(all_heard))


def run_gossip(n=4, seed=0, recorder=None, **kwargs):
    sim = make_sim(n=n, seed=seed, **kwargs)
    if recorder is not None:
        recorder.attach(sim)
    sim.set_protocol_all(gossip_protocol)
    sim.run()
    return sim


class TestConfigValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            LossyLinkConfig(drop_rate=-0.1)
        with pytest.raises(ValueError):
            LossyLinkConfig(duplicate_rate=1.5)

    def test_rates_must_be_mutually_exclusive(self):
        with pytest.raises(ValueError):
            LossyLinkConfig(drop_rate=0.6, duplicate_rate=0.6)

    def test_reorder_hold_positive(self):
        with pytest.raises(ValueError):
            LossyLinkConfig(reorder_hold=0)

    def test_per_link_one_level_deep(self):
        inner = LossyLinkConfig(drop_rate=0.5)
        with pytest.raises(ValueError):
            LossyLinkConfig(
                per_link={(0, 1): LossyLinkConfig(per_link={(1, 2): inner})}
            )

    def test_active_property(self):
        assert not LossyLinkConfig().active
        assert LossyLinkConfig(drop_rate=0.1).active
        assert LossyLinkConfig(
            per_link={(0, 1): LossyLinkConfig(corrupt_rate=0.2)}
        ).active

    def test_dict_round_trip(self):
        config = LossyLinkConfig(
            drop_rate=0.1,
            duplicate_rate=0.2,
            reorder_hold=8,
            per_link={(2, 3): LossyLinkConfig(corrupt_rate=0.5)},
        )
        assert LossyLinkConfig.from_dict(config.to_dict()) == config

    def test_simulation_rejects_non_config(self):
        with pytest.raises(TypeError):
            make_sim(lossy={"drop_rate": 0.5})


class TestInactiveConfigIsInvisible:
    def test_zero_rate_config_matches_no_config(self):
        recordings = []
        for lossy in (None, LossyLinkConfig()):
            recorder = FlightRecorder()
            sim = run_gossip(seed=3, lossy=lossy, recorder=recorder)
            recordings.append(
                ([event_to_record(e) for e in recorder.events], sim.returns)
            )
        assert recordings[0] == recordings[1]
        assert run_gossip(lossy=LossyLinkConfig()).lossy_counters == {
            "drops": 0, "duplicates": 0, "reorders": 0, "corruptions": 0,
        }


class TestFates:
    def test_drop_everything_deadlocks_cleanly(self):
        sim = run_gossip(n=3, lossy=LossyLinkConfig(drop_rate=1.0))
        assert sim.metrics.messages_delivered == 0
        assert sim.lossy_counters["drops"] == 9
        # Senders still paid for the eaten messages.
        assert sim.metrics.messages_sent_total == 9
        assert sim.returns == {}

    def test_duplicates_inflate_deliveries_not_sends(self):
        sim = run_gossip(n=4, seed=1, lossy=LossyLinkConfig(duplicate_rate=0.9))
        duplicates = sim.lossy_counters["duplicates"]
        assert duplicates > 0
        assert sim.metrics.messages_sent_total == 16
        assert sim.metrics.messages_delivered == 16 + duplicates
        # Gossip is idempotent: everyone still hears everyone.
        assert all(sim.returns[pid] == frozenset(range(4)) for pid in range(4))

    def test_reorder_holds_then_releases(self):
        sim = run_gossip(
            n=4, seed=2,
            lossy=LossyLinkConfig(reorder_rate=1.0, reorder_hold=4),
        )
        assert sim.lossy_counters["reorders"] == 16
        # Held messages are released, never withheld forever.
        assert sim.metrics.messages_delivered == 16
        assert all(sim.returns[pid] == frozenset(range(4)) for pid in range(4))

    def test_corruption_flips_one_bit_in_payload(self):
        sim = make_sim(n=3, seed=4, lossy=LossyLinkConfig(corrupt_rate=1.0))
        sim.set_protocol_all(tagged_gossip_protocol)
        sim.run()
        assert sim.lossy_counters["corruptions"] == 9
        # Every delivered payload differs from what its sender broadcast
        # (the sender's pid) -- exactly one flipped bit.
        for pid in range(3):
            pairs = sim.returns[pid]
            assert len(pairs) == 3
            for sender, payload in pairs:
                assert payload != sender
                assert bin(payload ^ sender).count("1") == 1

    def test_per_link_override_scopes_the_fault(self):
        lossy = LossyLinkConfig(
            per_link={(0, 1): LossyLinkConfig(drop_rate=1.0)}
        )
        sim = run_gossip(n=3, lossy=lossy)
        assert sim.lossy_counters["drops"] == 1
        # Process 1 never hears from 0 and stays blocked; the other
        # links are reliable, so 0 and 2 complete normally.
        assert set(sim.returns) == {0, 2}
        assert sim.returns[0] == frozenset(range(3))
        assert sim.returns[2] == frozenset(range(3))


class TestDeterminismAndReplay:
    LOSSY = LossyLinkConfig(
        drop_rate=0.1, duplicate_rate=0.2, reorder_rate=0.2, corrupt_rate=0.1
    )

    def _events(self, **kwargs):
        recorder = FlightRecorder()
        sim = run_gossip(
            n=5, seed=7, lossy=self.LOSSY,
            recorder=recorder, **kwargs
        )
        return [event_to_record(e) for e in recorder.events], sim, recorder

    def test_same_seed_same_fates(self):
        a, sim_a, _ = self._events()
        b, sim_b, _ = self._events()
        assert a == b
        assert sim_a.lossy_counters == sim_b.lossy_counters

    def test_lossy_run_replays_seq_exactly(self):
        original, _, recorder = self._events()
        replay = FlightRecorder()
        sim = run_gossip(
            n=5, seed=7, lossy=self.LOSSY,
            scheduler=ReplayScheduler(
                recorder.delivery_order(), seqs=recorder.delivery_seqs()
            ),
            recorder=replay,
        )
        assert [event_to_record(e) for e in replay.events] == original


class TestBatchedDeclinesToClassic:
    def test_batched_mode_with_lossy_matches_classic(self):
        lossy = LossyLinkConfig(duplicate_rate=0.5)
        results = {}
        for mode in ("classic", "batched"):
            recorder = FlightRecorder()
            sim = run_gossip(
                n=4, seed=9, lossy=lossy,
                scheduler=FIFOScheduler(),
                delivery_mode=mode,
                recorder=recorder,
            )
            results[mode] = (
                [event_to_record(e) for e in recorder.events],
                sim.returns,
                sim.lossy_counters,
            )
            assert sim.batched_deliveries == 0
        assert results["classic"] == results["batched"]
