"""Committee-targeted lossy overrides: resolution order, zero-rate wins.

The degradation observatory's ``targeted_committee_drop`` scenario
(DESIGN.md section 14) aims loss at specific links via
``LossyLinkConfig.per_link`` and the ``LossyLinkConfig.targeted``
builder.  These tests pin the override contract that scenario depends
on: a per-link override *replaces* the base rates wholesale (so an
all-zero override on a lossy base makes that one link reliable), the
targeted builder covers exactly the requested links while keeping any
base overrides it doesn't shadow, and fates under a per-link config are
deterministic and seq-exact replayable just like uniform ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.pki import PKI
from repro.sim.adversary import (
    Adversary,
    RandomScheduler,
    ReplayScheduler,
    StaticCorruption,
)
from repro.sim.events import event_to_record
from repro.sim.flightrecorder import FlightRecorder
from repro.sim.messages import Message
from repro.sim.network import LossyLinkConfig, Simulation
from repro.sim.process import Wait


@dataclass
class Ping(Message):
    payload: int = 0

    def words(self) -> int:
        return 1


def gossip_protocol(ctx):
    ctx.broadcast(Ping("gossip", payload=ctx.pid))
    senders = set()
    cursor = 0

    def all_heard(mailbox):
        nonlocal cursor
        stream = mailbox.stream("gossip")
        while cursor < len(stream):
            sender, _ = stream[cursor]
            cursor += 1
            senders.add(sender)
        if len(senders) >= ctx.n:
            return frozenset(senders)
        return None

    return (yield Wait(all_heard))


def run_gossip(n=4, seed=0, scheduler=None, recorder=None, lossy=None):
    pki = PKI.create(n, rng=random.Random(seed))
    adversary = Adversary(
        scheduler=scheduler or RandomScheduler(random.Random(seed)),
        corruption=StaticCorruption(set()),
    )
    sim = Simulation(n=n, f=0, pki=pki, adversary=adversary, seed=seed, lossy=lossy)
    if recorder is not None:
        recorder.attach(sim)
    sim.set_protocol_all(gossip_protocol)
    sim.run()
    return sim


class TestResolutionOrder:
    def test_override_replaces_base_rates_wholesale(self):
        base = LossyLinkConfig(
            drop_rate=0.5,
            per_link={(0, 1): LossyLinkConfig(duplicate_rate=0.9)},
        )
        effective = base.rates_for(0, 1)
        # The override is used as-is: the base's drop_rate does NOT bleed
        # through onto an overridden link.
        assert effective.duplicate_rate == 0.9
        assert effective.drop_rate == 0.0
        # Links without an override fall back to the base rates.
        assert base.rates_for(1, 0) is base
        assert base.rates_for(0, 2).drop_rate == 0.5

    def test_targeted_covers_exactly_the_requested_links(self):
        config = LossyLinkConfig.targeted(
            3, senders={0}, dests={2}, drop_rate=0.7
        )
        override = LossyLinkConfig(drop_rate=0.7)
        expected = {(0, dest) for dest in range(3)} | {
            (sender, 2) for sender in range(3)
        }
        assert set(config.per_link) == expected
        assert all(config.per_link[link] == override for link in expected)
        # Untargeted links stay on the (lossless) base.
        assert config.rates_for(1, 0) == config
        assert config.drop_rate == 0.0

    def test_targeted_keeps_base_overrides_but_shadows_them(self):
        base = LossyLinkConfig(
            drop_rate=0.5,
            per_link={
                (2, 0): LossyLinkConfig(corrupt_rate=1.0),
                (1, 0): LossyLinkConfig(duplicate_rate=1.0),
            },
        )
        config = LossyLinkConfig.targeted(
            3, senders={2}, base=base, drop_rate=0.9
        )
        # Base rates survive on the top level; the untouched base
        # override survives; the targeted link's base override loses.
        assert config.drop_rate == 0.5
        assert config.per_link[(1, 0)] == LossyLinkConfig(duplicate_rate=1.0)
        assert config.per_link[(2, 0)] == LossyLinkConfig(drop_rate=0.9)

    def test_targeted_round_trips_through_dict(self):
        config = LossyLinkConfig.targeted(
            4, senders={1, 3}, drop_rate=0.4,
            base=LossyLinkConfig(duplicate_rate=0.1),
        )
        assert LossyLinkConfig.from_dict(config.to_dict()) == config


class TestZeroRateOverrideHonored:
    def test_reliable_island_on_a_fully_lossy_base(self):
        # Everything drops except the one link overridden back to
        # all-zero rates: an explicit zero override must be honored, not
        # treated as "no override".
        lossy = LossyLinkConfig(
            drop_rate=1.0, per_link={(0, 1): LossyLinkConfig()}
        )
        sim = run_gossip(n=3, lossy=lossy)
        # 9 broadcasts (self-links included); only 0 -> 1 survives.
        assert sim.metrics.messages_sent_total == 9
        assert sim.metrics.messages_delivered == 1
        assert sim.lossy_counters["drops"] == 8
        assert sim.returns == {}


class TestTargetedDeterminismAndReplay:
    LOSSY = LossyLinkConfig.targeted(
        5, senders={1, 3}, drop_rate=0.3, duplicate_rate=0.3,
        base=LossyLinkConfig(reorder_rate=0.2),
    )

    def _events(self, scheduler=None):
        recorder = FlightRecorder()
        sim = run_gossip(
            n=5, seed=11, lossy=self.LOSSY,
            scheduler=scheduler, recorder=recorder,
        )
        return [event_to_record(e) for e in recorder.events], sim, recorder

    def test_same_seed_same_fates(self):
        a, sim_a, _ = self._events()
        b, sim_b, _ = self._events()
        assert a == b
        assert sim_a.lossy_counters == sim_b.lossy_counters
        # The targeted config actually fired at least one targeted fate.
        assert sim_a.lossy_counters["drops"] + sim_a.lossy_counters["duplicates"] > 0

    def test_seq_exact_replay_reproduces_targeted_fates(self):
        original, _, recorder = self._events()
        replayed, _, _ = self._events(
            scheduler=ReplayScheduler(
                recorder.delivery_order(), seqs=recorder.delivery_seqs()
            )
        )
        assert replayed == original


class TestCommitteeTargetedScenario:
    def test_overrides_cover_exactly_the_round0_committee_outlinks(self):
        from repro.core.committees import sample_committee
        from repro.crypto.hashing import derive_seed
        from repro.experiments.scenarios import make_scenario

        n, seed = 8, 0
        spec = make_scenario("targeted_committee_drop", n, seed=seed)
        assert spec.lossy is not None and spec.lossy.active
        # Recompute the round-0 WHP-coin committees from the same trusted
        # setup the scenario builder derives.
        pki = PKI.create(n, rng=random.Random(derive_seed(seed, "setup")))
        instance = ("whp_coin", ("ba", 0))
        members = sample_committee(pki, instance, "first", spec.params) | (
            sample_committee(pki, instance, "second", spec.params)
        )
        assert members
        senders = {sender for sender, _ in spec.lossy.per_link}
        assert senders == members
        assert set(spec.lossy.per_link) == {
            (sender, dest) for sender in members for dest in range(n)
        }
        for link in spec.lossy.per_link:
            assert spec.lossy.per_link[link].drop_rate == spec.rate
        # Non-committee links stay on the lossless base.
        assert spec.lossy.drop_rate == 0.0

    def test_zero_rate_builds_a_reliable_scenario(self):
        from repro.experiments.scenarios import make_scenario

        spec = make_scenario("targeted_committee_drop", 8, rate=0.0)
        assert spec.lossy is None
        assert spec.name == "targeted_committee_drop@0"
