"""Flight recordings: persistence, replay fidelity, critical path,
observability under mid-run corruption, and observer-effect freedom."""

from __future__ import annotations

import random

import pytest

from repro.core.agreement import byzantine_agreement
from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.pki import PKI
from repro.experiments.store import to_jsonable
from repro.sim.adversary import (
    Adversary,
    CommitteeTargetingCorruption,
    RandomScheduler,
    StaticCorruption,
)
from repro.sim.events import CorruptEvent
from repro.sim.flightrecorder import (
    FlightRecorder,
    critical_path,
    load_recording,
    save_recording,
)
from repro.sim.network import Simulation
from repro.sim.runner import RunResult, run_protocol, stop_when_all_decided

N, F = 12, 2


def ba_args(n=N, f=F):
    params = ProtocolParams.simulation_scale(n=n, f=f)
    return dict(
        corrupt=set(range(f)),
        params=params,
        stop_condition=stop_when_all_decided,
        max_deliveries=200_000,
    )


def ba_factory(ctx):
    return byzantine_agreement(ctx, ctx.pid % 2)


class TestObserverEffect:
    def test_recorded_run_result_is_byte_identical(self):
        bare = run_protocol(N, F, ba_factory, seed=5, **ba_args())
        recorder = FlightRecorder()
        observed = run_protocol(
            N, F, ba_factory, seed=5,
            subscribers=[recorder.on_event], **ba_args(),
        )
        assert recorder.events
        assert to_jsonable(bare) == to_jsonable(observed)

    def test_profiled_run_differs_only_in_timings(self):
        bare = run_protocol(N, F, ba_factory, seed=5, **ba_args())
        profiled = run_protocol(N, F, ba_factory, seed=5, profile=True, **ba_args())
        assert profiled.metrics.phase_timings
        assert not bare.metrics.phase_timings
        assert bare.metrics.to_dict(include_timings=False) == (
            profiled.metrics.to_dict(include_timings=False)
        )
        assert bare.decisions == profiled.decisions
        assert bare.deliveries == profiled.deliveries


class TestRoundTrip:
    def test_save_load_preserves_events_and_summary(self, tmp_path):
        recorder = FlightRecorder()
        result = run_protocol(
            N, F, ba_factory, seed=3,
            subscribers=[recorder.on_event], **ba_args(),
        )
        path = save_recording(tmp_path / "run.jsonl", recorder, result)
        recording = load_recording(path)
        assert list(recording.events) == recorder.events
        assert recording.header["n"] == N
        assert recording.header["f"] == F
        assert recording.header["seed"] == 3
        assert recording.summary["deliveries"] == result.deliveries
        assert recording.summary["words"] == result.words
        assert recording.summary["protocol"]["rounds"] == to_jsonable(
            result.metrics.rounds()
        )

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"k": "header", "schema": "repro.flight", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            load_recording(path)
        path.write_text('{"k": "send"}\n')
        with pytest.raises(ValueError, match="no header"):
            load_recording(path)


class TestReplayFidelity:
    def run_recorded(self, scheduler_or_seed, pki, corruption):
        if isinstance(scheduler_or_seed, int):
            scheduler = RandomScheduler(random.Random(scheduler_or_seed))
        else:
            scheduler = scheduler_or_seed
        sim = Simulation(
            n=N, f=F, pki=pki,
            adversary=Adversary(scheduler=scheduler, corruption=corruption),
            seed=7, params=ProtocolParams.simulation_scale(n=N, f=F),
            stop_condition=stop_when_all_decided,
            max_deliveries=200_000,
        )
        recorder = FlightRecorder().attach(sim)
        sim.set_protocol_all(ba_factory)
        sim.run()
        return sim, recorder

    def test_replay_reproduces_event_log_and_round_metrics(self):
        pki = PKI.create(N, rng=random.Random(7))
        original, recorded = self.run_recorded(7, pki, StaticCorruption({0, 1}))
        replayed, replay_log = self.run_recorded(
            recorded.replay_scheduler(), pki, StaticCorruption({0, 1}),
        )
        assert replay_log.events == recorded.events
        assert replayed.metrics.rounds() == original.metrics.rounds()
        assert replayed.metrics.protocol_summary() == (
            original.metrics.protocol_summary()
        )
        assert RunResult.of(replayed).decisions == RunResult.of(original).decisions

    def test_replay_reproduces_adaptive_corruptions(self):
        """Mid-run corruption is schedule-determined, so a replay re-corrupts
        the same processes at the same steps."""
        pki = PKI.create(N, rng=random.Random(7))
        corruption = CommitteeTargetingCorruption(message_kinds=("FirstMsg",))
        original, recorded = self.run_recorded(7, pki, corruption)
        corrupt_events = [
            e for e in recorded.events if isinstance(e, CorruptEvent)
        ]
        assert corrupt_events, "the targeting adversary corrupted nobody"
        assert {e.pid for e in corrupt_events} == original.corrupted
        # Corruptions happen mid-run (after deliveries started), not at setup.
        assert any(e.step > 0 for e in corrupt_events)
        replayed, replay_log = self.run_recorded(
            recorded.replay_scheduler(), pki,
            CommitteeTargetingCorruption(message_kinds=("FirstMsg",)),
        )
        assert replayed.corrupted == original.corrupted
        assert replay_log.events == recorded.events


class TestCriticalPath:
    def coin_events(self, protocol, seed=3):
        pki = PKI.create(N, rng=random.Random(seed))
        sim = Simulation(
            n=N, f=F, pki=pki,
            adversary=Adversary(
                scheduler=RandomScheduler(random.Random(seed)),
                corruption=StaticCorruption({0, 1}),
            ),
            seed=seed, params=ProtocolParams.simulation_scale(n=N, f=F),
        )
        recorder = FlightRecorder().attach(sim)
        sim.set_protocol_all(protocol)
        sim.run()
        return sim, recorder.events

    def test_empty_without_decisions(self):
        _, events = self.coin_events(lambda ctx: shared_coin(ctx, 0))
        assert critical_path(events) == []

    def test_chain_spans_every_depth(self):
        recorder = FlightRecorder()
        result = run_protocol(
            N, F, ba_factory, seed=3,
            subscribers=[recorder.on_event], **ba_args(),
        )
        chain = critical_path(recorder.events)
        assert chain, "a decided run must have a critical path"
        decide = chain[-1]
        assert decide["kind"] == "decide"
        assert decide["depth"] == result.duration
        hops = [entry for entry in chain if entry["kind"] == "deliver"]
        assert [hop["depth"] for hop in hops] == list(
            range(1, result.duration + 1)
        )
        # Chain is causally consistent: sender of each hop is the
        # destination of the previous one.
        for earlier, later in zip(hops, hops[1:]):
            assert later["sender"] == earlier["dest"]
        assert decide["pid"] == hops[-1]["dest"]
        # Steps never decrease along the chain.
        steps = [entry["step"] for entry in chain]
        assert steps == sorted(steps)

    def test_survives_json_round_trip(self, tmp_path):
        recorder = FlightRecorder()
        result = run_protocol(
            N, F, ba_factory, seed=3,
            subscribers=[recorder.on_event], **ba_args(),
        )
        path = save_recording(tmp_path / "run.jsonl", recorder, result)
        recording = load_recording(path)
        assert critical_path(recording.events) == critical_path(recorder.events)
