"""Word-complexity accounting (the paper's Section 2 definitions)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.messages import Envelope, Message
from repro.sim.metrics import MetricsRecorder, ProtocolRecord


@dataclass
class ThreeWord(Message):
    def words(self) -> int:
        return 3


def envelope(sender=0, correct=True, message=None, seq=0):
    return Envelope(
        seq=seq,
        sender=sender,
        dest=1,
        payload=message or ThreeWord("i"),
        depth=1,
        sender_correct=correct,
        sent_step=0,
    )


class TestWordAccounting:
    def test_correct_senders_counted(self):
        metrics = MetricsRecorder()
        metrics.record_send(envelope(correct=True))
        assert metrics.words_correct == 3
        assert metrics.words_total == 3
        assert metrics.messages_sent_correct == 1

    def test_byzantine_senders_excluded_from_word_complexity(self):
        # The paper counts words sent by *correct* processes only.
        metrics = MetricsRecorder()
        metrics.record_send(envelope(correct=False))
        assert metrics.words_correct == 0
        assert metrics.words_total == 3
        assert metrics.messages_sent_total == 1
        assert metrics.messages_sent_correct == 0

    def test_per_kind_breakdown(self):
        metrics = MetricsRecorder()
        metrics.record_send(envelope(message=ThreeWord("i")))
        metrics.record_send(envelope(message=Message("i")))
        assert metrics.words_by_kind["ThreeWord"] == 3
        assert metrics.words_by_kind["Message"] == 1
        assert metrics.messages_by_kind["ThreeWord"] == 1

    def test_byzantine_sends_not_in_kind_breakdown(self):
        metrics = MetricsRecorder()
        metrics.record_send(envelope(correct=False))
        assert "ThreeWord" not in metrics.words_by_kind

    def test_delivery_counter(self):
        metrics = MetricsRecorder()
        env = envelope()
        metrics.record_send(env)
        metrics.record_delivery(env)
        metrics.record_delivery(env)
        assert metrics.messages_delivered == 2


class TestPerProcessWords:
    """The 'no hot node' accounting behind the repro report table."""

    def _loaded(self):
        metrics = MetricsRecorder()
        for sender, sends in ((0, 1), (1, 2), (2, 4)):
            for seq in range(sends):
                metrics.record_send(envelope(sender=sender, seq=seq))
        metrics.record_send(envelope(sender=9, correct=False))
        return metrics

    def test_per_sender_counters_track_correct_sends_only(self):
        metrics = self._loaded()
        assert dict(metrics.words_by_sender) == {0: 3, 1: 6, 2: 12}
        assert dict(metrics.messages_by_sender) == {0: 1, 1: 2, 2: 4}
        assert 9 not in metrics.words_by_sender

    def test_to_dict_round_trips_with_string_keys(self):
        payload = self._loaded().to_dict()
        assert payload["words_by_sender"] == {"0": 3, "1": 6, "2": 12}
        assert payload["messages_by_sender"] == {"0": 1, "1": 2, "2": 4}

    def test_rollup_stats_and_top_senders(self):
        rollup = self._loaded().per_process_words()
        assert rollup["senders"] == 3
        assert rollup["words"] == 21
        assert rollup["max_words"] == 12
        assert rollup["min_words"] == 3
        assert rollup["mean_words"] == 7.0
        assert rollup["top_senders"][0] == [2, 12]

    def test_committee_split_uses_sampled_membership(self):
        metrics = self._loaded()
        metrics.protocol_records.append(
            ProtocolRecord(
                step=0, pid=2, kind="sampled",
                data=(("instance", "i"), ("role", "approve"), ("member", True)),
            )
        )
        metrics.protocol_records.append(
            ProtocolRecord(
                step=0, pid=0, kind="sampled",
                data=(("instance", "i"), ("role", "approve"), ("member", False)),
            )
        )
        rollup = metrics.per_process_words()
        assert rollup["committee"] == {
            "senders": 1, "words": 12, "max_words": 12,
            "mean_words": 12.0, "min_words": 12,
        }
        assert rollup["non_committee"]["senders"] == 2
        assert rollup["non_committee"]["words"] == 9

    def test_empty_recorder_degrades(self):
        assert MetricsRecorder().per_process_words() == {"senders": 0}

    def test_rollup_reaches_protocol_summary(self):
        summary = self._loaded().protocol_summary()
        assert summary["per_process_words"]["max_words"] == 12
