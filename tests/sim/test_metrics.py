"""Word-complexity accounting (the paper's Section 2 definitions)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.messages import Envelope, Message
from repro.sim.metrics import MetricsRecorder


@dataclass
class ThreeWord(Message):
    def words(self) -> int:
        return 3


def envelope(sender=0, correct=True, message=None, seq=0):
    return Envelope(
        seq=seq,
        sender=sender,
        dest=1,
        payload=message or ThreeWord("i"),
        depth=1,
        sender_correct=correct,
        sent_step=0,
    )


class TestWordAccounting:
    def test_correct_senders_counted(self):
        metrics = MetricsRecorder()
        metrics.record_send(envelope(correct=True))
        assert metrics.words_correct == 3
        assert metrics.words_total == 3
        assert metrics.messages_sent_correct == 1

    def test_byzantine_senders_excluded_from_word_complexity(self):
        # The paper counts words sent by *correct* processes only.
        metrics = MetricsRecorder()
        metrics.record_send(envelope(correct=False))
        assert metrics.words_correct == 0
        assert metrics.words_total == 3
        assert metrics.messages_sent_total == 1
        assert metrics.messages_sent_correct == 0

    def test_per_kind_breakdown(self):
        metrics = MetricsRecorder()
        metrics.record_send(envelope(message=ThreeWord("i")))
        metrics.record_send(envelope(message=Message("i")))
        assert metrics.words_by_kind["ThreeWord"] == 3
        assert metrics.words_by_kind["Message"] == 1
        assert metrics.messages_by_kind["ThreeWord"] == 1

    def test_byzantine_sends_not_in_kind_breakdown(self):
        metrics = MetricsRecorder()
        metrics.record_send(envelope(correct=False))
        assert "ThreeWord" not in metrics.words_by_kind

    def test_delivery_counter(self):
        metrics = MetricsRecorder()
        env = envelope()
        metrics.record_send(env)
        metrics.record_delivery(env)
        metrics.record_delivery(env)
        assert metrics.messages_delivered == 2
