"""The kernel event bus: typed events, serialisation, emission semantics."""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro.core.params import ProtocolParams
from repro.core.shared_coin import shared_coin
from repro.crypto.pki import PKI
from repro.experiments.store import to_jsonable
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.events import (
    CorruptEvent,
    DecideEvent,
    DeliverEvent,
    EventBus,
    PayloadSummary,
    PhaseEvent,
    SendEvent,
    WaitBlockEvent,
    WaitWakeEvent,
    event_from_record,
    event_to_record,
)
from repro.sim.network import Simulation


def make_coin_sim(n=10, f=2, seed=3, **kwargs):
    pki = PKI.create(n, rng=random.Random(seed))
    sim = Simulation(
        n=n, f=f, pki=pki,
        adversary=Adversary(
            scheduler=RandomScheduler(random.Random(seed)),
            corruption=StaticCorruption(set(range(f))),
        ),
        seed=seed, params=ProtocolParams(n=n, f=f), **kwargs,
    )
    sim.set_protocol_all(lambda ctx: shared_coin(ctx, 0))
    return sim


class TestEventBus:
    def test_subscribe_emit_unsubscribe(self):
        bus = EventBus()
        seen = []
        assert not bus
        bus.subscribe(seen.append)
        assert bus
        event = CorruptEvent(step=0, pid=3)
        bus.emit(event)
        assert seen == [event]
        bus.unsubscribe(seen.append)
        bus.emit(event)
        assert seen == [event]

    def test_duplicate_subscribe_is_noop(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.subscribe(seen.append)
        bus.emit(CorruptEvent(step=0, pid=1))
        assert len(seen) == 1

    def test_subscribers_called_in_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(lambda event: calls.append("a"))
        bus.subscribe(lambda event: calls.append("b"))
        bus.emit(CorruptEvent(step=0, pid=1))
        assert calls == ["a", "b"]


SAMPLE_EVENTS = [
    SendEvent(step=1, seq=5, sender=2, dest=3, instance=("shared_coin", 0),
              message_kind="FirstMsg", words=4, depth=1, sender_correct=True),
    DeliverEvent(step=2, seq=5, sender=2, dest=3, instance=("shared_coin", 0),
                 message_kind="FirstMsg", words=4, depth=1, sent_step=1,
                 summary=PayloadSummary(kind="FirstMsg",
                                        instance=("shared_coin", 0),
                                        words=4, text="FirstMsg(...)")),
    CorruptEvent(step=3, pid=7),
    DecideEvent(step=9, pid=1, value=0, depth=12),
    WaitBlockEvent(step=4, pid=2, description="shared_coin(0,)", subscribed=True,
                   depth=3),
    WaitWakeEvent(step=5, pid=2, description="shared_coin(0,)", depth=4),
    PhaseEvent(step=6, pid=0, phase="ba-round", instance=("ba", 1), action="enter"),
]


class TestSerialization:
    @pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda e: e.kind)
    def test_json_round_trip(self, event):
        # The exact persistence path: record -> jsonable -> JSON -> back.
        wire = json.loads(json.dumps(to_jsonable(event_to_record(event))))
        assert event_from_record(wire) == event

    def test_deliver_round_trip_drops_live_payload(self):
        event = SAMPLE_EVENTS[1]
        live = dataclasses.replace(event, payload=object())
        rebuilt = event_from_record(event_to_record(live))
        assert rebuilt.payload is None
        assert rebuilt.summary == event.summary

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_record({"k": "warp", "step": 0})

    def test_records_are_flat_json_objects(self):
        for event in SAMPLE_EVENTS:
            record = event_to_record(event)
            assert record["k"] == event.kind
            json.dumps(to_jsonable(record))  # must not raise


class TestKernelEmission:
    def test_no_subscriber_run_has_empty_bus(self):
        sim = make_coin_sim()
        sim.run()
        assert not sim.events.subscribers

    def test_event_counts_match_metrics(self):
        sim = make_coin_sim()
        events = []
        sim.events.subscribe(events.append)
        sim.run()
        sends = [e for e in events if isinstance(e, SendEvent)]
        delivers = [e for e in events if isinstance(e, DeliverEvent)]
        assert len(sends) == sim.metrics.messages_sent_total
        assert len(delivers) == sim.metrics.messages_delivered
        corrupts = {e.pid for e in events if isinstance(e, CorruptEvent)}
        assert corrupts == sim.corrupted

    def test_deliver_steps_are_pre_increment(self):
        sim = make_coin_sim()
        events = []
        sim.events.subscribe(events.append)
        sim.run()
        deliver_steps = [e.step for e in events if isinstance(e, DeliverEvent)]
        assert deliver_steps == list(range(len(deliver_steps)))

    def test_deliver_payload_live_during_callback(self):
        sim = make_coin_sim()
        seen = []

        def probe(event):
            if isinstance(event, DeliverEvent):
                seen.append(type(event.payload).__name__ == event.message_kind)

        sim.events.subscribe(probe)
        sim.run()
        assert seen and all(seen)

    def test_phase_events_balance(self):
        sim = make_coin_sim()
        events = []
        sim.events.subscribe(events.append)
        sim.run()
        phases = [e for e in events if isinstance(e, PhaseEvent)]
        enters = [e for e in phases if e.action == "enter"]
        exits = [e for e in phases if e.action == "exit"]
        # Every correct process opens one shared_coin span and closes it.
        assert len(enters) == len(exits) == sim.n - sim.f
        assert {e.phase for e in phases} == {"shared_coin"}

    def test_wait_block_and_wake_recorded(self):
        sim = make_coin_sim()
        events = []
        sim.events.subscribe(events.append)
        sim.run()
        blocks = [e for e in events if isinstance(e, WaitBlockEvent)]
        wakes = [e for e in events if isinstance(e, WaitWakeEvent)]
        assert blocks and wakes
        # A wake can only follow a block of the same process.
        blocked_pids = {e.pid for e in blocks}
        assert {e.pid for e in wakes} <= blocked_pids

    def test_wait_events_carry_monotone_causal_depth(self):
        sim = make_coin_sim()
        events = []
        sim.events.subscribe(events.append)
        sim.run()
        # Causal depth never decreases across a park: the wake's depth is
        # at least the depth the process blocked at (deliveries only raise
        # ctx.depth), so wake.depth - block.depth is a valid wait latency.
        latest_block: dict[int, int] = {}
        wakes_checked = 0
        for event in events:
            if isinstance(event, WaitBlockEvent):
                assert event.depth >= 0
                latest_block[event.pid] = event.depth
            elif isinstance(event, WaitWakeEvent):
                assert event.depth >= latest_block[event.pid]
                wakes_checked += 1
        assert wakes_checked > 0
