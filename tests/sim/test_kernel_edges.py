"""Kernel edge cases: error propagation, livelock guard, stop timing."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.crypto.pki import PKI
from repro.sim.adversary import Adversary, RandomScheduler
from repro.sim.messages import Message
from repro.sim.network import Simulation
from repro.sim.process import Wait


@dataclass
class Tick(Message):
    def words(self) -> int:
        return 1


def make_sim(n=3, seed=0, **kwargs):
    pki = PKI.create(n, rng=random.Random(seed))
    sim = Simulation(
        n=n, f=0, pki=pki,
        adversary=Adversary(scheduler=RandomScheduler(random.Random(seed))),
        seed=seed, **kwargs,
    )
    return sim


class TestErrorPropagation:
    def test_protocol_exception_surfaces(self):
        """A bug in a correct process's protocol is a test bug: the kernel
        must propagate it loudly, not swallow it as a 'fault'."""

        def buggy(ctx):
            raise KeyError("protocol bug")
            yield

        sim = make_sim()
        sim.set_protocol_all(buggy)
        with pytest.raises(KeyError):
            sim.run()

    def test_condition_exception_surfaces(self):
        def bad_condition(ctx):
            ctx.broadcast(Tick("t"))
            yield Wait(lambda mailbox: 1 / 0)

        sim = make_sim()
        sim.set_protocol_all(bad_condition)
        with pytest.raises(ZeroDivisionError):
            sim.run()


class TestLivelockGuard:
    def test_always_true_condition_detected(self):
        def spinner(ctx):
            while True:
                yield Wait(lambda mailbox: True)

        sim = make_sim()
        sim.set_protocol_all(spinner)
        with pytest.raises(RuntimeError, match="without blocking"):
            sim.run()


class TestStopConditionTiming:
    def test_stop_checked_before_every_delivery(self):
        """The stop condition fires between deliveries, so the delivery
        count at stop is exact, not approximate."""
        seen = []

        def noter(ctx):
            ctx.broadcast(Tick("t"))
            yield Wait(lambda mailbox: None)

        def stop_at_four(simulation):
            seen.append(simulation.deliveries if hasattr(simulation, "deliveries") else None)
            return simulation.metrics.messages_delivered >= 4

        sim = make_sim(stop_condition=stop_at_four)
        sim.set_protocol_all(noter)
        sim.run()
        assert sim.metrics.messages_delivered == 4
        assert sim.stopped_by_condition

    def test_zero_message_protocol_terminates(self):
        def silent_return(ctx):
            return "done"
            yield

        sim = make_sim()
        sim.set_protocol_all(silent_return)
        sim.run()
        assert sim.returns == {0: "done", 1: "done", 2: "done"}
        assert not sim.deadlocked


class TestNeverRunSimulation:
    def test_exhausted_and_deadlocked_answer_before_run(self):
        """A constructed-but-never-run simulation reports its state instead
        of raising AttributeError (``exhausted`` used to be set only by
        ``run``)."""
        sim = make_sim()
        assert sim.exhausted is False
        assert sim.deadlocked is False
        assert sim.stopped_by_condition is False


class TestSubmitValidation:
    def test_invalid_dest_rejected(self):
        sim = make_sim()
        sim.set_protocol_all(lambda ctx: iter(()))
        with pytest.raises(ValueError, match="invalid destination"):
            sim.submit(0, 3, Tick("t"))

    def test_negative_sender_rejected(self):
        """A negative sender used to silently index contexts[-1] and stamp
        the wrong depth/sender_correct; it must fail like a bad dest."""
        sim = make_sim()
        sim.set_protocol_all(lambda ctx: iter(()))
        with pytest.raises(ValueError, match="invalid sender"):
            sim.submit(-1, 0, Tick("t"))

    def test_out_of_range_sender_rejected(self):
        sim = make_sim()
        sim.set_protocol_all(lambda ctx: iter(()))
        with pytest.raises(ValueError, match="invalid sender"):
            sim.submit(3, 0, Tick("t"))


class TestLivelockDiagnostics:
    def test_error_names_wait_and_subscriptions(self):
        """The livelock guard's RuntimeError carries the wait description
        and subscribed instances, so a spinning protocol is debuggable
        from the error alone."""

        def spinner(ctx):
            while True:
                yield Wait(
                    lambda mailbox: True,
                    description="spinning-wait",
                    instances={"round-3"},
                )

        sim = make_sim()
        sim.set_protocol_all(spinner)
        with pytest.raises(RuntimeError) as excinfo:
            sim.run()
        text = str(excinfo.value)
        assert "'spinning-wait'" in text
        assert "'round-3'" in text


class TestVerifyTimerRestore:
    def test_restore_reinstates_prior_wrapper(self):
        """A shared PKI may already carry instance-level verify wrappers
        (e.g. from an outer profiled run); restore() must put them back,
        not delete them."""
        sim = make_sim()
        pki = sim.pki

        def outer_wrapper(process_id, alpha, output):  # pragma: no cover
            raise AssertionError("never called in this test")

        pki.vrf_verify = outer_wrapper
        restore = sim._install_verify_timers()
        assert pki.vrf_verify is not outer_wrapper  # timers installed
        restore()
        assert pki.__dict__["vrf_verify"] is outer_wrapper
        del pki.vrf_verify  # leave the module-scoped fixture clean

    def test_restore_clears_when_no_prior_wrapper(self):
        sim = make_sim()
        pki = sim.pki
        assert "vrf_verify" not in pki.__dict__
        restore = sim._install_verify_timers()
        assert "vrf_verify" in pki.__dict__
        restore()
        assert "vrf_verify" not in pki.__dict__
        assert "signature_verify" not in pki.__dict__

    def test_restore_is_idempotent(self):
        sim = make_sim()
        restore = sim._install_verify_timers()
        restore()
        restore()  # a bare `del` here would raise AttributeError
        assert "vrf_verify" not in sim.pki.__dict__

    def test_profiled_run_leaves_shared_pki_clean(self):
        """End to end: profile=True wraps, the run ends, the PKI is back
        to its class-level methods."""

        def quick(ctx):
            ctx.broadcast(Tick("t"))
            return (yield Wait(lambda mailbox: len(mailbox.stream("t")) >= 3 or None))

        sim = make_sim(profile=True)
        sim.set_protocol_all(quick)
        sim.run()
        assert "vrf_verify" not in sim.pki.__dict__
        assert "signature_verify" not in sim.pki.__dict__


class TestCorruptionEdges:
    def test_corrupting_finished_process_is_allowed(self):
        """A process whose generator already returned can still be
        corrupted (its budget slot is spent like any other)."""
        def quick(ctx):
            return "ok"
            yield

        pki = PKI.create(3, rng=random.Random(1))
        sim = Simulation(
            n=3, f=1, pki=pki,
            adversary=Adversary(scheduler=RandomScheduler(random.Random(1))),
            seed=1,
        )
        sim.set_protocol_all(quick)
        sim.run()
        assert sim.corrupt(0)
        assert sim.corrupted == {0}

    def test_double_corruption_rejected(self):
        pki = PKI.create(3, rng=random.Random(2))
        sim = Simulation(
            n=3, f=2, pki=pki,
            adversary=Adversary(scheduler=RandomScheduler(random.Random(2))),
            seed=2,
        )
        sim.set_protocol_all(lambda ctx: iter(()))
        assert sim.corrupt(1)
        assert not sim.corrupt(1)  # already corrupted
        assert len(sim.corrupted) == 1
