"""Kernel edge cases: error propagation, livelock guard, stop timing."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.crypto.pki import PKI
from repro.sim.adversary import Adversary, RandomScheduler
from repro.sim.messages import Message
from repro.sim.network import Simulation
from repro.sim.process import Wait


@dataclass
class Tick(Message):
    def words(self) -> int:
        return 1


def make_sim(n=3, seed=0, **kwargs):
    pki = PKI.create(n, rng=random.Random(seed))
    sim = Simulation(
        n=n, f=0, pki=pki,
        adversary=Adversary(scheduler=RandomScheduler(random.Random(seed))),
        seed=seed, **kwargs,
    )
    return sim


class TestErrorPropagation:
    def test_protocol_exception_surfaces(self):
        """A bug in a correct process's protocol is a test bug: the kernel
        must propagate it loudly, not swallow it as a 'fault'."""

        def buggy(ctx):
            raise KeyError("protocol bug")
            yield

        sim = make_sim()
        sim.set_protocol_all(buggy)
        with pytest.raises(KeyError):
            sim.run()

    def test_condition_exception_surfaces(self):
        def bad_condition(ctx):
            ctx.broadcast(Tick("t"))
            yield Wait(lambda mailbox: 1 / 0)

        sim = make_sim()
        sim.set_protocol_all(bad_condition)
        with pytest.raises(ZeroDivisionError):
            sim.run()


class TestLivelockGuard:
    def test_always_true_condition_detected(self):
        def spinner(ctx):
            while True:
                yield Wait(lambda mailbox: True)

        sim = make_sim()
        sim.set_protocol_all(spinner)
        with pytest.raises(RuntimeError, match="without blocking"):
            sim.run()


class TestStopConditionTiming:
    def test_stop_checked_before_every_delivery(self):
        """The stop condition fires between deliveries, so the delivery
        count at stop is exact, not approximate."""
        seen = []

        def noter(ctx):
            ctx.broadcast(Tick("t"))
            yield Wait(lambda mailbox: None)

        def stop_at_four(simulation):
            seen.append(simulation.deliveries if hasattr(simulation, "deliveries") else None)
            return simulation.metrics.messages_delivered >= 4

        sim = make_sim(stop_condition=stop_at_four)
        sim.set_protocol_all(noter)
        sim.run()
        assert sim.metrics.messages_delivered == 4
        assert sim.stopped_by_condition

    def test_zero_message_protocol_terminates(self):
        def silent_return(ctx):
            return "done"
            yield

        sim = make_sim()
        sim.set_protocol_all(silent_return)
        sim.run()
        assert sim.returns == {0: "done", 1: "done", 2: "done"}
        assert not sim.deadlocked


class TestCorruptionEdges:
    def test_corrupting_finished_process_is_allowed(self):
        """A process whose generator already returned can still be
        corrupted (its budget slot is spent like any other)."""
        def quick(ctx):
            return "ok"
            yield

        pki = PKI.create(3, rng=random.Random(1))
        sim = Simulation(
            n=3, f=1, pki=pki,
            adversary=Adversary(scheduler=RandomScheduler(random.Random(1))),
            seed=1,
        )
        sim.set_protocol_all(quick)
        sim.run()
        assert sim.corrupt(0)
        assert sim.corrupted == {0}

    def test_double_corruption_rejected(self):
        pki = PKI.create(3, rng=random.Random(2))
        sim = Simulation(
            n=3, f=2, pki=pki,
            adversary=Adversary(scheduler=RandomScheduler(random.Random(2))),
            seed=2,
        )
        sim.set_protocol_all(lambda ctx: iter(()))
        assert sim.corrupt(1)
        assert not sim.corrupt(1)  # already corrupted
        assert len(sim.corrupted) == 1
