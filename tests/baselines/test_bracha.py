"""Bracha RBC and BA: optimal resilience n > 3f with a local coin."""

from __future__ import annotations

import random

import pytest

from repro.baselines.bracha import (
    RBCSendMsg,
    bracha_agreement,
    reliable_broadcast_all,
)
from repro.core.params import ProtocolParams
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.byzantine import ScriptedBehavior
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 13, 2
CORRUPT = {0, 1}
PARAMS = ProtocolParams(n=N, f=F)


class TestReliableBroadcast:
    def test_all_correct_values_delivered(self):
        result = run_protocol(
            N, F,
            lambda ctx: reliable_broadcast_all(
                ctx, ("rbc",), ctx.pid % 2, quorum=N - F
            ),
            corrupt=CORRUPT, params=PARAMS, seed=1,
        )
        assert result.live
        for delivered in result.returns.values():
            assert len(delivered) >= N - F
            for origin, value in delivered.items():
                if origin not in CORRUPT:
                    assert value == origin % 2

    def test_equivocating_originator_resolved_consistently(self):
        """A Byzantine originator SENDs 0 to half the processes and 1 to
        the rest; RBC must deliver at most one of them, the same
        everywhere."""
        instance = ("rbc-equiv",)

        def equivocate(ctx):
            for dest in range(ctx.n):
                value = 0 if dest < ctx.n // 2 else 1
                ctx.send(dest, RBCSendMsg(instance, value=value))

        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(2)),
            corruption=StaticCorruption(CORRUPT),
            behavior_factory=lambda pid: ScriptedBehavior(on_start=equivocate),
        )
        result = run_protocol(
            N, F,
            lambda ctx: reliable_broadcast_all(ctx, instance, 1, quorum=N - F),
            adversary=adversary, params=PARAMS, seed=2,
        )
        assert result.live
        byz_values = set()
        for delivered in result.returns.values():
            for origin in CORRUPT:
                if origin in delivered:
                    byz_values.add(delivered[origin])
        assert len(byz_values) <= 1

    def test_silent_originators_do_not_block(self):
        result = run_protocol(
            N, F,
            lambda ctx: reliable_broadcast_all(ctx, ("rbc-s",), 1, quorum=N - F),
            corrupt=CORRUPT, params=PARAMS, seed=3,
        )
        assert result.live


class TestBrachaAgreement:
    @pytest.mark.parametrize("value", [0, 1])
    def test_validity(self, value):
        result = run_protocol(
            N, F, lambda ctx: bracha_agreement(ctx, value),
            corrupt=CORRUPT, params=PARAMS,
            stop_condition=stop_when_all_decided, seed=value,
        )
        assert result.live
        assert result.all_correct_decided
        assert result.decided_values == {value}

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_split_inputs(self, seed):
        result = run_protocol(
            N, F, lambda ctx: bracha_agreement(ctx, ctx.pid % 2),
            corrupt=CORRUPT, params=PARAMS,
            stop_condition=stop_when_all_decided, seed=seed,
            max_deliveries=4_000_000,
        )
        assert result.live
        assert result.all_correct_decided
        assert result.agreement

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            run_protocol(
                N, F, lambda ctx: bracha_agreement(ctx, 7),
                corrupt=CORRUPT, params=PARAMS, seed=0,
            )

    def test_optimal_resilience_holds_at_third(self):
        # n = 10, f = 3 (n > 3f exactly): still safe and live.
        n, f = 10, 3
        result = run_protocol(
            n, f, lambda ctx: bracha_agreement(ctx, 1),
            corrupt={0, 1, 2}, params=ProtocolParams(n=n, f=f),
            stop_condition=stop_when_all_decided, seed=4,
        )
        assert result.live
        assert result.decided_values == {1}
