"""MMR BA with each pluggable coin, plus BV-broadcast internals."""

from __future__ import annotations

import random

import pytest

from repro.baselines.mmr import (
    BValMsg,
    local_coin,
    make_shared_coin,
    mmr_agreement,
)
from repro.core.params import ProtocolParams
from repro.sim.adversary import Adversary, RandomScheduler, StaticCorruption
from repro.sim.byzantine import ScriptedBehavior
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 16, 3
CORRUPT = {0, 1, 2}
PARAMS = ProtocolParams(n=N, f=F)


def run_mmr(value_fn, coin, seed, **kwargs):
    return run_protocol(
        N, F, lambda ctx: mmr_agreement(ctx, value_fn(ctx), coin),
        corrupt=CORRUPT, params=PARAMS,
        stop_condition=stop_when_all_decided, seed=seed, **kwargs,
    )


class TestWithLocalCoin:
    @pytest.mark.parametrize("value", [0, 1])
    def test_validity(self, value):
        result = run_mmr(lambda ctx: value, local_coin, seed=value)
        assert result.live
        assert result.all_correct_decided
        assert result.decided_values == {value}

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_split_inputs(self, seed):
        result = run_mmr(lambda ctx: ctx.pid % 2, local_coin, seed=seed)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestWithSharedCoin:
    """The paper's Section 4 closing remark: MMR + Algorithm 1."""

    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_split_inputs(self, seed):
        result = run_mmr(lambda ctx: ctx.pid % 2, make_shared_coin(), seed=seed)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement

    def test_word_complexity_stays_quadratic(self):
        result = run_mmr(lambda ctx: ctx.pid % 2, make_shared_coin(), seed=7)
        # O(n^2) per round with a small constant; allow ~8 rounds of slack.
        assert result.words <= 8 * 8 * N * N


class TestWithWhpCoin:
    """The hybrid instantiation: all-to-all votes, committee-based coin."""

    def test_agreement_with_committee_coin(self):
        from repro.baselines.mmr import make_whp_coin
        from repro.core.params import ProtocolParams

        n, f = 60, 4
        params = ProtocolParams.simulation_scale(n=n, f=f, lam=45)
        result = run_protocol(
            n, f,
            lambda ctx: mmr_agreement(ctx, ctx.pid % 2, make_whp_coin(params), params),
            corrupt={0, 1, 2, 3}, params=params,
            stop_condition=stop_when_all_decided, seed=11,
        )
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestByzantineBVBroadcast:
    def test_bval_spam_of_both_values_is_safe(self):
        """Byzantine processes BVAL both values; bin_values may grow but
        safety (agreement) must hold."""

        def spam(ctx):
            for round_id in range(3):
                instance = ("mmr", round_id)
                ctx.broadcast(BValMsg(instance, value=0))
                ctx.broadcast(BValMsg(instance, value=1))

        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(8)),
            corruption=StaticCorruption(CORRUPT),
            behavior_factory=lambda pid: ScriptedBehavior(on_start=spam),
        )
        result = run_protocol(
            N, F, lambda ctx: mmr_agreement(ctx, ctx.pid % 2, local_coin),
            adversary=adversary, params=PARAMS,
            stop_condition=stop_when_all_decided, seed=8,
        )
        assert result.live
        assert result.agreement

    def test_garbage_values_ignored(self):
        def garbage(ctx):
            ctx.broadcast(BValMsg(("mmr", 0), value=99))

        adversary = Adversary(
            scheduler=RandomScheduler(random.Random(9)),
            corruption=StaticCorruption(CORRUPT),
            behavior_factory=lambda pid: ScriptedBehavior(on_start=garbage),
        )
        result = run_protocol(
            N, F, lambda ctx: mmr_agreement(ctx, 1, local_coin),
            adversary=adversary, params=PARAMS,
            stop_condition=stop_when_all_decided, seed=9,
        )
        assert result.live
        assert result.decided_values == {1}


class TestRoundStructure:
    def test_max_rounds_bounds_run(self):
        result = run_protocol(
            N, F,
            lambda ctx: mmr_agreement(ctx, ctx.pid % 2, local_coin, max_rounds=2),
            corrupt=CORRUPT, params=PARAMS, seed=10,
        )
        assert result.live
        assert len(result.returns) == N - F

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            run_mmr(lambda ctx: None, local_coin, seed=0)

    def test_laggards_terminate_after_leaders_decide(self):
        # The background BV relays keep helping laggards; every correct
        # process must decide, not just a quorum.
        for seed in range(3):
            result = run_mmr(lambda ctx: ctx.pid % 2, local_coin, seed=40 + seed)
            assert result.all_correct_decided
