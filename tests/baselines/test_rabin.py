"""Rabin's BA with the pre-dealt lottery coin."""

from __future__ import annotations

import random

import pytest

from repro.baselines.rabin import make_lottery_coin, rabin_agreement
from repro.core.params import ProtocolParams
from repro.crypto.threshold import RabinLotteryDealer
from repro.sim.process import Wait
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 22, 2  # n > 10f
CORRUPT = {0, 1}
PARAMS = ProtocolParams(n=N, f=F)


@pytest.fixture(scope="module")
def dealer():
    return RabinLotteryDealer(N, F + 1, random.Random(81))


def run_rabin(value_fn, dealer, seed, **kwargs):
    return run_protocol(
        N, F, lambda ctx: rabin_agreement(ctx, value_fn(ctx), dealer),
        corrupt=CORRUPT, params=PARAMS,
        stop_condition=stop_when_all_decided, seed=seed, **kwargs,
    )


class TestValidity:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous(self, dealer, value):
        result = run_rabin(lambda ctx: value, dealer, seed=value)
        assert result.live
        assert result.all_correct_decided
        assert result.decided_values == {value}


class TestAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_split_inputs(self, dealer, seed):
        result = run_rabin(lambda ctx: ctx.pid % 2, dealer, seed=seed)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestLotteryCoinProtocol:
    def test_all_processes_toss_the_dealers_bit(self, dealer):
        coin = make_lottery_coin(dealer)

        def coin_once(ctx):
            return (yield from coin(ctx, 0))

        result = run_protocol(
            N, F, coin_once, corrupt=CORRUPT, params=PARAMS, seed=5,
        )
        assert result.live
        expected = dealer.combine(
            {pid: dealer.coin_share(pid, 0) for pid in range(F + 1)}, 0
        )
        assert result.returned_values == {expected}

    def test_coin_is_common_despite_byzantine_shares(self, dealer):
        # Byzantine share withholding cannot change the coin: any f+1
        # valid shares reconstruct the same bit.  (Corrupted processes
        # are silent here, so correct ones rely on each other's shares.)
        coin = make_lottery_coin(dealer)

        def coin_round_7(ctx):
            return (yield from coin(ctx, 7))

        results = set()
        for seed in range(3):
            result = run_protocol(
                N, F, coin_round_7, corrupt=CORRUPT, params=PARAMS, seed=seed,
            )
            assert result.live
            results |= result.returned_values
        assert len(results) == 1

    def test_rejects_non_binary(self, dealer):
        with pytest.raises(ValueError):
            run_rabin(lambda ctx: -1, dealer, seed=0)
