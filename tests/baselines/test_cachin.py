"""Cachin-style BA with the CKS threshold coin."""

from __future__ import annotations

import random

import pytest

from repro.baselines.cachin import cachin_agreement, make_threshold_coin
from repro.core.params import ProtocolParams
from repro.crypto.threshold import ThresholdCoinDealer
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 13, 3  # optimal resilience: n > 3f
CORRUPT = {0, 1, 2}
PARAMS = ProtocolParams(n=N, f=F)


@pytest.fixture(scope="module")
def dealer():
    return ThresholdCoinDealer(N, F + 1, random.Random(91))


def run_cachin(value_fn, dealer, seed):
    return run_protocol(
        N, F, lambda ctx: cachin_agreement(ctx, value_fn(ctx), dealer),
        corrupt=CORRUPT, params=PARAMS,
        stop_condition=stop_when_all_decided, seed=seed,
    )


class TestValidity:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous(self, dealer, value):
        result = run_cachin(lambda ctx: value, dealer, seed=value)
        assert result.live
        assert result.all_correct_decided
        assert result.decided_values == {value}


class TestAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_split_inputs(self, dealer, seed):
        result = run_cachin(lambda ctx: ctx.pid % 2, dealer, seed=seed)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestThresholdCoinProtocol:
    def test_common_coin_is_common(self, dealer):
        coin = make_threshold_coin(dealer)

        def one_flip(ctx):
            return (yield from coin(ctx, ("mmr", 0)))

        result = run_protocol(
            N, F, one_flip, corrupt=CORRUPT, params=PARAMS, seed=3,
        )
        assert result.live
        assert len(result.returned_values) == 1
        assert result.returned_values <= {0, 1}

    def test_rounds_give_varied_bits(self, dealer):
        coin = make_threshold_coin(dealer)

        def flips(ctx):
            bits = []
            for round_id in range(8):
                bit = yield from coin(ctx, round_id)
                bits.append(bit)
            return tuple(bits)

        result = run_protocol(
            N, F, flips, corrupt=CORRUPT, params=PARAMS, seed=4,
        )
        assert result.live
        sequences = result.returned_values
        assert len(sequences) == 1  # everyone saw the same sequence
        sequence = next(iter(sequences))
        assert set(sequence) == {0, 1}

    def test_word_complexity_quadratic(self, dealer):
        # One coin flip: each correct process broadcasts one 1-word share.
        coin = make_threshold_coin(dealer)

        def one_flip(ctx):
            return (yield from coin(ctx, 0))

        result = run_protocol(
            N, F, one_flip, corrupt=CORRUPT, params=PARAMS, seed=5,
        )
        assert result.words == (N - F) * N
