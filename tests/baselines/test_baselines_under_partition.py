"""Every baseline under a healing network partition.

Asynchronous protocols must ride out any finite partition; the scheduler
holds the cross-cut messages until `heal_after` intra-side deliveries,
then the run must still decide safely.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.protocols import PROTOCOLS, make_runner
from repro.sim.adversary import Adversary, PartitionScheduler, StaticCorruption
from repro.sim.runner import run_protocol, stop_when_all_decided

N = 16


@pytest.mark.parametrize("name", [p for p in PROTOCOLS if p != "benor"])
def test_partition_then_heal_decides(name):
    # (Ben-Or is excluded only for runtime: its local coin can need many
    # rounds, and a partition makes the expected count worse; its
    # partition behaviour is covered implicitly by the quorum math tests.)
    factory, params, f = make_runner(name, N, seed=11)
    adversary = Adversary(
        scheduler=PartitionScheduler(
            set(range(N // 2)), heal_after=800, rng=random.Random(11)
        ),
        corruption=StaticCorruption(set(range(f))),
    )
    result = run_protocol(
        N, f, factory, adversary=adversary, params=params,
        stop_condition=stop_when_all_decided, seed=11,
        max_deliveries=4_000_000,
    )
    assert result.live, name
    assert result.all_correct_decided, name
    assert result.agreement, name


def test_partition_longer_than_run_just_stalls_not_breaks():
    """A partition that effectively never heals within the cap: the run
    must stall cleanly (no decisions on the minority side conflicting)."""
    factory, params, f = make_runner("mmr", N, seed=12)
    adversary = Adversary(
        scheduler=PartitionScheduler(
            set(range(3)),  # minority smaller than any quorum
            heal_after=10**9,
            rng=random.Random(12),
        ),
        corruption=StaticCorruption(set(range(f))),
    )
    result = run_protocol(
        N, f, factory, adversary=adversary, params=params,
        stop_condition=stop_when_all_decided, seed=12,
        max_deliveries=300_000,
    )
    # The majority side contains a full quorum, so it can decide; either
    # way no disagreement is possible.
    assert result.agreement
