"""Ben-Or BA: validity, agreement, termination at n > 5f."""

from __future__ import annotations

import pytest

from repro.baselines.benor import benor_agreement
from repro.core.params import ProtocolParams
from repro.sim.runner import run_protocol, stop_when_all_decided

N, F = 21, 3
CORRUPT = {0, 1, 2}
PARAMS = ProtocolParams(n=N, f=F)


def run_benor(value_fn, seed, **kwargs):
    return run_protocol(
        N, F, lambda ctx: benor_agreement(ctx, value_fn(ctx)),
        corrupt=CORRUPT, params=PARAMS,
        stop_condition=stop_when_all_decided, seed=seed, **kwargs,
    )


class TestValidity:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_decides_in_one_round(self, value):
        result = run_benor(lambda ctx: value, seed=value)
        assert result.live
        assert result.all_correct_decided
        assert result.decided_values == {value}


class TestAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_split_inputs_agree(self, seed):
        result = run_benor(lambda ctx: ctx.pid % 2, seed=seed)
        assert result.live
        assert result.all_correct_decided
        assert result.agreement


class TestStructure:
    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            run_benor(lambda ctx: "x", seed=0)

    def test_word_complexity_quadratic_per_round(self):
        result = run_benor(lambda ctx: 1, seed=9)
        # Unanimous input: one round = 2 phases x n broadcasts x n words...
        # the decided processes keep going until the stop condition fires,
        # so allow a small number of rounds.
        per_round = 2 * (N - F) * N
        assert result.words <= 4 * per_round

    def test_max_rounds_bounds_run(self):
        result = run_protocol(
            N, F,
            lambda ctx: benor_agreement(ctx, ctx.pid % 2, max_rounds=2),
            corrupt=CORRUPT, params=PARAMS, seed=10,
        )
        assert result.live
        assert len(result.returns) == N - F
