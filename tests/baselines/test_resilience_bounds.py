"""Each baseline at its exact Table 1 resilience boundary."""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    benor_agreement,
    bracha_agreement,
    cachin_agreement,
    local_coin,
    mmr_agreement,
    rabin_agreement,
)
from repro.core.params import ProtocolParams
from repro.crypto.threshold import RabinLotteryDealer, ThresholdCoinDealer
from repro.sim.runner import run_protocol, stop_when_all_decided


def run_at_bound(n, f, factory_builder, seeds=range(2)):
    params = ProtocolParams(n=n, f=f)
    for seed in seeds:
        result = run_protocol(
            n, f, factory_builder(n, f), corrupt=set(range(f)), params=params,
            stop_condition=stop_when_all_decided, seed=seed,
            max_deliveries=4_000_000,
        )
        assert result.live, seed
        assert result.all_correct_decided, seed
        assert result.agreement, seed


class TestExactBounds:
    def test_benor_at_n_5f_plus_1(self):
        # n = 11, f = 2: n > 5f exactly.
        run_at_bound(11, 2, lambda n, f: (
            lambda ctx: benor_agreement(ctx, ctx.pid % 2)
        ))

    def test_bracha_at_n_3f_plus_1(self):
        run_at_bound(10, 3, lambda n, f: (
            lambda ctx: bracha_agreement(ctx, ctx.pid % 2)
        ))

    def test_mmr_at_n_3f_plus_1(self):
        run_at_bound(10, 3, lambda n, f: (
            lambda ctx: mmr_agreement(ctx, ctx.pid % 2, local_coin)
        ))

    def test_cachin_at_n_3f_plus_1(self):
        dealer = ThresholdCoinDealer(10, 4, random.Random(1))
        run_at_bound(10, 3, lambda n, f: (
            lambda ctx: cachin_agreement(ctx, ctx.pid % 2, dealer)
        ))

    def test_rabin_at_n_10f_plus_1(self):
        dealer = RabinLotteryDealer(11, 2, random.Random(2))
        run_at_bound(11, 1, lambda n, f: (
            lambda ctx: rabin_agreement(ctx, ctx.pid % 2, dealer)
        ))


class TestBeyondBoundIsNotGuaranteed:
    def test_mmr_with_too_many_faults_can_stall(self):
        """n = 9, f = 3 violates n > 3f: 2f+1 = 7 > n - f = 6 correct
        senders can never materialise, so BV-broadcast cannot deliver and
        the run deadlocks (rather than deciding wrongly)."""
        n, f = 9, 3
        params = ProtocolParams(n=n, f=f)
        result = run_protocol(
            n, f, lambda ctx: mmr_agreement(ctx, ctx.pid % 2, local_coin),
            corrupt=set(range(f)), params=params,
            stop_condition=stop_when_all_decided, seed=3,
            max_deliveries=300_000,
        )
        assert not result.all_correct_decided
        # Crucially: stalling, not disagreeing.
        assert result.agreement
