"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.params import ProtocolParams
from repro.crypto.pki import PKI


@pytest.fixture(scope="session")
def small_pki() -> PKI:
    """A 12-process simulated-backend PKI, shared across tests for speed."""
    return PKI.create(12, backend="simulated", rng=random.Random(1234))


@pytest.fixture(scope="session")
def rsa_pki() -> PKI:
    """A 4-process real-RSA PKI (small keys) for the genuine-crypto paths."""
    return PKI.create(4, backend="rsa", rng=random.Random(99), modulus_bits=256)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(42)


@pytest.fixture
def committee_params() -> ProtocolParams:
    """Committee parameters known to be comfortably live at n=60."""
    return ProtocolParams.simulation_scale(n=60, f=4, lam=45)


def seeds(count: int, base: int = 0) -> range:
    """Deterministic seed range for Monte-Carlo tests."""
    return range(base, base + count)
