"""Number theory: primality, modular inverses, prime generation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.numtheory import (
    egcd,
    is_probable_prime,
    modinv,
    next_prime,
    random_prime,
)

# Known primes spanning the deterministic-witness regimes.
KNOWN_PRIMES = [
    2, 3, 5, 7, 11, 101, 997, 7919, 104729,
    2_147_483_647,              # 2^31 - 1 (Mersenne)
    67_280_421_310_721,         # factor of 2^128 + 1
    (1 << 89) - 1,              # Mersenne prime M89
    2**255 - 19,                # the curve25519 prime
    2**256 - 189,               # our Shamir field prime
]

# Composites chosen to embarrass naive tests: Carmichael numbers fool the
# Fermat test for every base coprime to n.
CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]

COMPOSITES = [
    1, 4, 6, 9, 15, 100, 1000, 7917, 104730,
    2_147_483_647 * 3,
    (2**61 - 1) * (2**31 - 1),  # product of two Mersenne primes
    2**255 - 18,
]


class TestEgcd:
    @given(st.integers(1, 10**12), st.integers(1, 10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0

    def test_gcd_matches_math(self):
        import math

        for a, b in [(12, 18), (17, 5), (100, 75), (1, 1)]:
            assert egcd(a, b)[0] == math.gcd(a, b)

    def test_zero_operands(self):
        g, x, _ = egcd(0, 7)
        assert g == 7
        g, x, _ = egcd(7, 0)
        assert g == 7 and 7 * x == 7

    @given(st.integers(-(10**9), -1), st.integers(1, 10**9))
    def test_bezout_holds_for_negative_a(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g


class TestModinv:
    @given(st.integers(2, 10**9))
    def test_inverse_mod_prime(self, a):
        p = 2**61 - 1
        inv = modinv(a, p)
        assert a * inv % p == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_inverse_of_one(self):
        assert modinv(1, 97) == 1

    def test_negative_argument(self):
        assert (-3) * modinv(-3, 97) % 97 == 1


class TestMillerRabin:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", COMPOSITES)
    def test_known_composites(self, c):
        assert not is_probable_prime(c)

    @pytest.mark.parametrize("c", CARMICHAELS)
    def test_carmichael_numbers(self, c):
        assert not is_probable_prime(c)

    def test_zero_and_negatives(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(-7)

    def test_matches_sieve_below_10000(self):
        limit = 10_000
        sieve = [True] * limit
        sieve[0] = sieve[1] = False
        for i in range(2, int(limit**0.5) + 1):
            if sieve[i]:
                for j in range(i * i, limit, i):
                    sieve[j] = False
        for value in range(limit):
            assert is_probable_prime(value) == sieve[value], value


class TestPrimeGeneration:
    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(10) == 11
        assert next_prime(7919) == 7927

    @pytest.mark.parametrize("bits", [8, 16, 32, 128, 256])
    def test_random_prime_bit_length(self, bits):
        rng = random.Random(7)
        for _ in range(3):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_random_prime_top_two_bits_set(self):
        # Required so RSA moduli p*q have exactly 2*bits bits.
        rng = random.Random(11)
        p = random_prime(64, rng)
        assert p >> 62 == 0b11

    def test_random_prime_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_prime(2, random.Random(0))

    def test_random_prime_deterministic_per_rng(self):
        assert random_prime(32, random.Random(5)) == random_prime(32, random.Random(5))
