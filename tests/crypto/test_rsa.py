"""RSA keygen and FDH signatures (the substrate of the real VRF)."""

from __future__ import annotations

import random

import pytest

from repro.crypto.numtheory import is_probable_prime
from repro.crypto.rsa import (
    full_domain_hash,
    generate_keypair,
    rsa_sign,
    rsa_verify,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=256, rng=random.Random(21))


class TestKeyGeneration:
    def test_modulus_bit_length(self, keypair):
        assert keypair.n.bit_length() == 256

    def test_factors_are_prime(self, keypair):
        assert is_probable_prime(keypair.p)
        assert is_probable_prime(keypair.q)
        assert keypair.p * keypair.q == keypair.n

    def test_exponents_are_inverses(self, keypair):
        phi = (keypair.p - 1) * (keypair.q - 1)
        assert keypair.e * keypair.d % phi == 1

    def test_public_key_strips_secrets(self, keypair):
        public = keypair.public_key()
        assert public.n == keypair.n
        assert public.e == keypair.e
        assert not hasattr(public, "d")

    def test_distinct_rngs_give_distinct_keys(self):
        a = generate_keypair(bits=128, rng=random.Random(1))
        b = generate_keypair(bits=128, rng=random.Random(2))
        assert a.n != b.n


class TestFullDomainHash:
    def test_in_range(self, keypair):
        for i in range(50):
            value = full_domain_hash(str(i).encode(), keypair.n)
            assert 0 <= value < keypair.n

    def test_deterministic(self, keypair):
        assert full_domain_hash(b"m", keypair.n) == full_domain_hash(b"m", keypair.n)

    def test_message_sensitivity(self, keypair):
        assert full_domain_hash(b"m1", keypair.n) != full_domain_hash(b"m2", keypair.n)

    def test_spreads_over_modulus(self, keypair):
        # Crude uniformity check: values should land in both halves of Z_n.
        values = [full_domain_hash(str(i).encode(), keypair.n) for i in range(40)]
        assert any(v < keypair.n // 2 for v in values)
        assert any(v >= keypair.n // 2 for v in values)


class TestSignatures:
    def test_roundtrip(self, keypair):
        signature = rsa_sign(keypair, b"hello")
        assert rsa_verify(keypair.public_key(), b"hello", signature)

    def test_wrong_message_rejected(self, keypair):
        signature = rsa_sign(keypair, b"hello")
        assert not rsa_verify(keypair.public_key(), b"goodbye", signature)

    def test_tampered_signature_rejected(self, keypair):
        signature = rsa_sign(keypair, b"hello")
        assert not rsa_verify(keypair.public_key(), b"hello", signature + 1)

    def test_wrong_key_rejected(self, keypair):
        other = generate_keypair(bits=256, rng=random.Random(22))
        signature = rsa_sign(keypair, b"hello")
        assert not rsa_verify(other.public_key(), b"hello", signature)

    def test_out_of_range_signature_rejected(self, keypair):
        assert not rsa_verify(keypair.public_key(), b"m", -1)
        assert not rsa_verify(keypair.public_key(), b"m", keypair.n)

    def test_signature_is_deterministic(self, keypair):
        # Uniqueness of RSA-FDH: one valid signature per message.
        assert rsa_sign(keypair, b"m") == rsa_sign(keypair, b"m")
