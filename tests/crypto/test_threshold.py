"""Threshold common coins: the CKS-style dealer and Rabin's lottery."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.crypto.threshold import RabinLotteryDealer, ThresholdCoinDealer


@pytest.fixture(scope="module")
def cks_dealer():
    return ThresholdCoinDealer(n=7, threshold=3, rng=random.Random(51))


@pytest.fixture(scope="module")
def lottery_dealer():
    return RabinLotteryDealer(n=7, threshold=3, rng=random.Random(52))


@pytest.fixture(scope="module", params=["cks", "lottery"])
def dealer(request, cks_dealer, lottery_dealer):
    return cks_dealer if request.param == "cks" else lottery_dealer


class TestDealerContract:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            ThresholdCoinDealer(3, 4, random.Random(0))
        with pytest.raises(ValueError):
            RabinLotteryDealer(3, 0, random.Random(0))

    def test_share_verifies(self, dealer):
        for pid in range(dealer.n):
            share = dealer.coin_share(pid, 0)
            assert dealer.verify_share(pid, 0, share)

    def test_share_bound_to_process(self, dealer):
        share = dealer.coin_share(0, 0)
        assert not dealer.verify_share(1, 0, share)

    def test_share_bound_to_round(self, dealer):
        share = dealer.coin_share(0, 0)
        assert not dealer.verify_share(0, 1, share)

    def test_invalid_pid_rejected(self, dealer):
        share = dealer.coin_share(0, 0)
        assert not dealer.verify_share(-1, 0, share)
        assert not dealer.verify_share(dealer.n, 0, share)

    def test_combine_needs_threshold_shares(self, dealer):
        shares = {pid: dealer.coin_share(pid, 0) for pid in range(dealer.threshold - 1)}
        with pytest.raises(ValueError):
            dealer.combine(shares, 0)

    def test_combine_rejects_invalid_share(self, dealer):
        shares = {pid: dealer.coin_share(pid, 0) for pid in range(dealer.threshold)}
        shares[0] = dealer.coin_share(0, 1)  # valid for the wrong round
        with pytest.raises(ValueError):
            dealer.combine(shares, 0)

    def test_all_subsets_combine_to_same_bit(self, dealer):
        round_id = 3
        all_shares = {pid: dealer.coin_share(pid, round_id) for pid in range(dealer.n)}
        bits = set()
        for subset in combinations(range(dealer.n), dealer.threshold):
            bits.add(dealer.combine({pid: all_shares[pid] for pid in subset}, round_id))
        assert len(bits) == 1
        assert bits.pop() in (0, 1)

    def test_coin_sequence_is_balanced(self, dealer):
        shares = lambda r: {pid: dealer.coin_share(pid, r) for pid in range(dealer.threshold)}
        bits = [dealer.combine(shares(r), r) for r in range(60)]
        assert 12 <= sum(bits) <= 48  # both outcomes occur, roughly balanced

    def test_rounds_are_independent(self, dealer):
        shares = lambda r: {pid: dealer.coin_share(pid, r) for pid in range(dealer.threshold)}
        bits = {dealer.combine(shares(r), r) for r in range(16)}
        assert bits == {0, 1}


class TestLotterySpecifics:
    def test_deterministic_rematerialisation(self):
        a = RabinLotteryDealer(5, 2, random.Random(9))
        share_first = a.coin_share(3, 7)
        a._rounds.clear()  # force rematerialisation from the seed
        assert a.coin_share(3, 7) == share_first

    def test_distinct_dealers_distinct_lotteries(self):
        a = RabinLotteryDealer(5, 2, random.Random(1))
        b = RabinLotteryDealer(5, 2, random.Random(2))
        bits_a = [a.combine({0: a.coin_share(0, r), 1: a.coin_share(1, r)}, r) for r in range(24)]
        bits_b = [b.combine({0: b.coin_share(0, r), 1: b.coin_share(1, r)}, r) for r in range(24)]
        assert bits_a != bits_b


class TestCKSSpecifics:
    def test_share_is_group_element(self, cks_dealer):
        from repro.crypto.threshold import _SCHNORR_P

        share = cks_dealer.coin_share(2, 5)
        assert 1 < share < _SCHNORR_P

    def test_tuple_round_ids_supported(self, cks_dealer):
        # Protocol round ids are tuples like ("mmr", 3); the hash-to-group
        # accepts any canonically encodable value.
        share = cks_dealer.coin_share(0, ("mmr", 3))
        assert cks_dealer.verify_share(0, ("mmr", 3), share)
