"""Signature backends, parametrised like the VRF contract tests."""

from __future__ import annotations

import random

import pytest

from repro.crypto.signatures import RSASignatureScheme, SimulatedSignatureScheme


@pytest.fixture(scope="module", params=["simulated", "rsa"])
def scheme(request):
    if request.param == "rsa":
        return RSASignatureScheme(modulus_bits=256)
    return SimulatedSignatureScheme()


@pytest.fixture(scope="module")
def keys(scheme):
    return scheme.keygen(random.Random(41))


class TestSignatureContract:
    def test_roundtrip(self, scheme, keys):
        sk, pk = keys
        signature = scheme.sign(sk, b"msg")
        assert scheme.verify(pk, b"msg", signature)

    def test_message_binding(self, scheme, keys):
        sk, pk = keys
        signature = scheme.sign(sk, b"msg")
        assert not scheme.verify(pk, b"other", signature)

    def test_key_binding(self, scheme, keys):
        sk, _ = keys
        _, other_pk = scheme.keygen(random.Random(42))
        signature = scheme.sign(sk, b"msg")
        assert not scheme.verify(other_pk, b"msg", signature)

    def test_garbage_signature_rejected(self, scheme, keys):
        _, pk = keys
        assert not scheme.verify(pk, b"msg", b"\x00" * 32)
        assert not scheme.verify(pk, b"msg", None)

    def test_deterministic(self, scheme, keys):
        sk, _ = keys
        assert scheme.sign(sk, b"msg") == scheme.sign(sk, b"msg")

    def test_empty_message(self, scheme, keys):
        sk, pk = keys
        assert scheme.verify(pk, b"", scheme.sign(sk, b""))


class TestSimulatedSpecifics:
    def test_registries_are_isolated(self):
        a = SimulatedSignatureScheme()
        b = SimulatedSignatureScheme()
        sk, pk = a.keygen(random.Random(1))
        assert not b.verify(pk, b"m", a.sign(sk, b"m"))

    def test_signature_domain_separated_from_vrf(self):
        # The HMAC inputs are prefixed, so a VRF proof can never validate
        # as a signature on the same bytes.
        from repro.crypto.hashing import hmac_sha256

        scheme = SimulatedSignatureScheme()
        sk, pk = scheme.keygen(random.Random(1))
        raw_hmac = hmac_sha256(sk.secret, b"m")
        assert not scheme.verify(pk, b"m", raw_hmac)
