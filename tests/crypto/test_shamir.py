"""Shamir secret sharing over the 256-bit prime field."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import FIELD_PRIME, Share, reconstruct_secret, split_secret
from repro.crypto.numtheory import is_probable_prime


class TestField:
    def test_field_prime_is_prime(self):
        assert is_probable_prime(FIELD_PRIME)

    def test_field_holds_256_bit_hashes(self):
        assert FIELD_PRIME > 2**255


class TestSplit:
    def test_share_count_and_points(self, rng):
        shares = split_secret(123, threshold=3, num_shares=7, rng=rng)
        assert len(shares) == 7
        assert [s.x for s in shares] == list(range(1, 8))

    def test_rejects_secret_outside_field(self, rng):
        with pytest.raises(ValueError):
            split_secret(FIELD_PRIME, 2, 3, rng)
        with pytest.raises(ValueError):
            split_secret(-1, 2, 3, rng)

    def test_rejects_bad_threshold(self, rng):
        with pytest.raises(ValueError):
            split_secret(1, 0, 3, rng)
        with pytest.raises(ValueError):
            split_secret(1, 4, 3, rng)

    def test_threshold_one_shares_equal_secret(self, rng):
        shares = split_secret(99, threshold=1, num_shares=4, rng=rng)
        assert all(s.y == 99 for s in shares)


class TestReconstruct:
    @given(
        secret=st.integers(0, FIELD_PRIME - 1),
        threshold=st.integers(1, 6),
        extra=st.integers(0, 4),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=40)
    def test_roundtrip_any_subset(self, secret, threshold, extra, seed):
        rng = random.Random(seed)
        num_shares = threshold + extra
        shares = split_secret(secret, threshold, num_shares, rng)
        subset = rng.sample(shares, threshold)
        assert reconstruct_secret(subset) == secret

    def test_all_threshold_subsets_agree(self, rng):
        shares = split_secret(777, threshold=3, num_shares=5, rng=rng)
        from itertools import combinations

        results = {reconstruct_secret(list(c)) for c in combinations(shares, 3)}
        assert results == {777}

    def test_fewer_shares_give_wrong_secret(self, rng):
        # Information-theoretically, k-1 shares interpolate to an
        # essentially random value; check it simply differs here.
        secret = 42
        shares = split_secret(secret, threshold=4, num_shares=6, rng=rng)
        assert reconstruct_secret(shares[:3]) != secret

    def test_duplicate_x_rejected(self, rng):
        shares = split_secret(1, 2, 3, rng)
        with pytest.raises(ValueError):
            reconstruct_secret([shares[0], shares[0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reconstruct_secret([])

    def test_corrupted_share_changes_result(self, rng):
        shares = split_secret(42, threshold=3, num_shares=3, rng=rng)
        corrupted = [shares[0], shares[1], Share(x=shares[2].x, y=shares[2].y ^ 1)]
        assert reconstruct_secret(corrupted) != 42
