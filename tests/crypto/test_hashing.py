"""Canonical encoding and hashing: unambiguity is load-bearing for every
protocol transcript, so it gets property-based coverage."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    derive_seed,
    encode,
    hash_to_int,
    hmac_sha256,
    sha256,
    tagged_hash,
)

# Values the canonical encoding supports, nested up to depth 3.
atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**130), max_value=2**130),
    st.text(max_size=40),
    st.binary(max_size=40),
)
values = st.recursive(atoms, lambda inner: st.lists(inner, max_size=4).map(tuple), max_leaves=12)


class TestEncode:
    def test_deterministic(self):
        assert encode(1, "a", b"b") == encode(1, "a", b"b")

    def test_type_distinguishes_int_from_str(self):
        assert encode(5) != encode("5")

    def test_type_distinguishes_bytes_from_str(self):
        assert encode("ab") != encode(b"ab")

    def test_bool_is_not_int(self):
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_none_is_distinct_from_empties(self):
        assert encode(None) != encode("")
        assert encode(None) != encode(0)
        assert encode(None) != encode(())

    def test_nesting_matters(self):
        assert encode((1, 2), 3) != encode(1, (2, 3))
        assert encode((1,), (2,)) != encode((1, 2))

    def test_negative_ints(self):
        assert encode(-1) != encode(1)
        assert encode(-(2**64)) != encode(2**64)

    def test_empty_string_vs_empty_bytes(self):
        assert encode("") != encode(b"")

    def test_list_and_tuple_encode_alike(self):
        assert encode([1, 2]) == encode((1, 2))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode(object())

    def test_float_rejected(self):
        # Floats are deliberately unsupported: protocol transcripts must
        # never depend on float formatting.
        with pytest.raises(TypeError):
            encode(1.5)

    @given(values, values)
    def test_injective_on_pairs(self, a, b):
        if encode(a) == encode(b):
            assert a == b

    @given(st.lists(values, max_size=5), st.lists(values, max_size=5))
    def test_injective_on_argument_lists(self, xs, ys):
        if encode(*xs) == encode(*ys):
            assert tuple(xs) == tuple(ys)


class TestHashing:
    def test_sha256_known_vector(self):
        # SHA-256 of the empty string, from FIPS 180-4.
        assert (
            sha256(b"").hex()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_tagged_hash_separates_domains(self):
        assert tagged_hash("a", 1) != tagged_hash("b", 1)

    def test_tagged_hash_depends_on_parts(self):
        assert tagged_hash("a", 1) != tagged_hash("a", 2)

    def test_hash_to_int_range_default(self):
        value = hash_to_int("t", 1)
        assert 0 <= value < 2**256

    @pytest.mark.parametrize("bits", [1, 8, 64, 255, 256, 300, 768])
    def test_hash_to_int_range(self, bits):
        for part in range(20):
            assert 0 <= hash_to_int("t", part, bits=bits) < 2**bits

    def test_hash_to_int_deterministic(self):
        assert hash_to_int("t", "x", bits=128) == hash_to_int("t", "x", bits=128)

    def test_hash_to_int_bits_change_value(self):
        assert hash_to_int("t", 1, bits=64) != hash_to_int("t", 1, bits=65)

    def test_hash_to_int_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            hash_to_int("t", 1, bits=0)

    def test_hash_to_int_single_bit_varies(self):
        bits = {hash_to_int("t", i, bits=1) for i in range(64)}
        assert bits == {0, 1}

    def test_hmac_differs_by_key(self):
        assert hmac_sha256(b"k1", b"m") != hmac_sha256(b"k2", b"m")

    def test_hmac_differs_by_message(self):
        assert hmac_sha256(b"k", b"m1") != hmac_sha256(b"k", b"m2")


class TestDeriveSeed:
    def test_in_64_bit_range(self):
        assert 0 <= derive_seed("a", 1) < 2**64

    def test_deterministic(self):
        assert derive_seed(7, "process", 3) == derive_seed(7, "process", 3)

    def test_distinct_streams(self):
        assert derive_seed(7, "process", 3) != derive_seed(7, "process", 4)
        assert derive_seed(7, "process", 3) != derive_seed(7, "sched", 3)

    @given(st.integers(0, 2**32), st.integers(0, 2**32))
    def test_no_trivial_collisions(self, a, b):
        if a != b:
            assert derive_seed("s", a) != derive_seed("s", b)
