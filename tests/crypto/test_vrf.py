"""VRF backends: pseudorandomness surface, verifiability, uniqueness.

The two backends must be behaviourally interchangeable -- the protocol
suite runs on either -- so every contract test is parametrised over both.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.vrf import (
    RSAFDHVRF,
    VRF_OUTPUT_BITS,
    SimulatedVRF,
    VRFOutput,
    VRFScheme,
)


def make_scheme(name: str) -> VRFScheme:
    if name == "rsa":
        return RSAFDHVRF(modulus_bits=256)
    return SimulatedVRF()


@pytest.fixture(scope="module", params=["simulated", "rsa"])
def scheme(request):
    return make_scheme(request.param)


@pytest.fixture(scope="module")
def keys(scheme):
    return scheme.keygen(random.Random(31))


class TestVRFContract:
    def test_output_in_range(self, scheme, keys):
        sk, _ = keys
        output = scheme.prove(sk, b"alpha")
        assert 0 <= output.value < 2**VRF_OUTPUT_BITS

    def test_verifiability(self, scheme, keys):
        sk, pk = keys
        output = scheme.prove(sk, b"alpha")
        assert scheme.verify(pk, b"alpha", output)

    def test_determinism(self, scheme, keys):
        sk, _ = keys
        assert scheme.prove(sk, b"alpha") == scheme.prove(sk, b"alpha")

    def test_input_sensitivity(self, scheme, keys):
        sk, _ = keys
        assert scheme.prove(sk, b"a").value != scheme.prove(sk, b"b").value

    def test_wrong_input_rejected(self, scheme, keys):
        sk, pk = keys
        output = scheme.prove(sk, b"a")
        assert not scheme.verify(pk, b"b", output)

    def test_tampered_value_rejected(self, scheme, keys):
        sk, pk = keys
        output = scheme.prove(sk, b"a")
        forged = VRFOutput(value=output.value ^ 1, proof=output.proof)
        assert not scheme.verify(pk, b"a", forged)

    def test_wrong_key_rejected(self, scheme, keys):
        sk, _ = keys
        _, other_pk = scheme.keygen(random.Random(32))
        output = scheme.prove(sk, b"a")
        assert not scheme.verify(other_pk, b"a", output)

    def test_uniqueness_cannot_present_two_values(self, scheme, keys):
        # Verifying any value other than the canonical one must fail, for
        # a sample of candidate forgeries.
        sk, pk = keys
        genuine = scheme.prove(sk, b"a")
        for delta in (1, 2, 2**128, 2**255):
            forged = VRFOutput(value=(genuine.value + delta) % 2**256, proof=genuine.proof)
            assert not scheme.verify(pk, b"a", forged)

    def test_keys_give_independent_values(self, scheme):
        rng = random.Random(33)
        sk1, _ = scheme.keygen(rng)
        sk2, _ = scheme.keygen(rng)
        assert scheme.prove(sk1, b"a").value != scheme.prove(sk2, b"a").value

    def test_value_out_of_range_rejected_at_construction(self):
        with pytest.raises(ValueError):
            VRFOutput(value=2**256, proof=b"")
        with pytest.raises(ValueError):
            VRFOutput(value=-1, proof=b"")


class TestOutputDistribution:
    """Crude uniformity checks shared by both backends."""

    def test_lsb_balanced(self, scheme, keys):
        sk, _ = keys
        bits = [scheme.prove(sk, str(i).encode()).value & 1 for i in range(200)]
        ones = sum(bits)
        assert 60 <= ones <= 140  # ~±5.7 sigma around 100

    def test_high_bits_vary(self, scheme, keys):
        sk, _ = keys
        tops = {scheme.prove(sk, str(i).encode()).value >> 248 for i in range(64)}
        assert len(tops) > 16


class TestSimulatedVRFSpecifics:
    def test_unknown_key_id_rejected(self):
        scheme = SimulatedVRF()
        sk, pk = scheme.keygen(random.Random(1))
        other = SimulatedVRF()  # separate registry
        output = scheme.prove(sk, b"a")
        assert not other.verify(pk, b"a", output)

    def test_proof_is_the_hmac(self):
        scheme = SimulatedVRF()
        sk, pk = scheme.keygen(random.Random(1))
        output = scheme.prove(sk, b"a")
        # A proof of the right shape but wrong bytes must fail.
        forged = VRFOutput(value=output.value, proof=bytes(32))
        assert not scheme.verify(pk, b"a", forged)


class TestRSAFDHVRFSpecifics:
    def test_rejects_non_integer_proof(self):
        scheme = RSAFDHVRF(modulus_bits=256)
        _, pk = scheme.keygen(random.Random(2))
        assert not scheme.verify(pk, b"a", VRFOutput(value=0, proof=b"junk"))

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            RSAFDHVRF(modulus_bits=64)
