"""The trusted PKI setup."""

from __future__ import annotations

import random

import pytest

from repro.crypto.pki import PKI
from repro.crypto.vrf import VRFOutput


class TestCreation:
    def test_simulated_backend(self):
        pki = PKI.create(5, backend="simulated", rng=random.Random(0))
        assert pki.n == 5

    def test_rsa_backend(self):
        pki = PKI.create(2, backend="rsa", rng=random.Random(0), modulus_bits=256)
        assert pki.n == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PKI.create(3, backend="quantum")

    def test_rejects_empty_system(self):
        with pytest.raises(ValueError):
            PKI.create(0)


class TestKeyRouting:
    def test_vrf_verify_routes_to_right_key(self, small_pki):
        alpha = b"input"
        for pid in range(small_pki.n):
            output = small_pki.vrf_scheme.prove(small_pki.vrf_private(pid), alpha)
            assert small_pki.vrf_verify(pid, alpha, output)
            other = (pid + 1) % small_pki.n
            assert not small_pki.vrf_verify(other, alpha, output)

    def test_signature_verify_routes_to_right_key(self, small_pki):
        for pid in range(small_pki.n):
            sig = small_pki.signature_scheme.sign(
                small_pki.signature_private(pid), b"msg"
            )
            assert small_pki.signature_verify(pid, b"msg", sig)
            other = (pid + 1) % small_pki.n
            assert not small_pki.signature_verify(other, b"msg", sig)

    def test_out_of_range_pid_rejected(self, small_pki):
        output = small_pki.vrf_scheme.prove(small_pki.vrf_private(0), b"a")
        assert not small_pki.vrf_verify(small_pki.n, b"a", output)
        assert not small_pki.vrf_verify(-1, b"a", output)
        sig = small_pki.signature_scheme.sign(small_pki.signature_private(0), b"a")
        assert not small_pki.signature_verify(small_pki.n, b"a", sig)

    def test_keys_are_distinct_across_processes(self, small_pki):
        values = {
            small_pki.vrf_scheme.prove(small_pki.vrf_private(pid), b"x").value
            for pid in range(small_pki.n)
        }
        assert len(values) == small_pki.n

    def test_same_rng_reproduces_keys(self):
        a = PKI.create(4, rng=random.Random(77))
        b = PKI.create(4, rng=random.Random(77))
        out_a = a.vrf_scheme.prove(a.vrf_private(2), b"x")
        out_b = b.vrf_scheme.prove(b.vrf_private(2), b"x")
        assert out_a.value == out_b.value


class TestRSAEndToEnd:
    def test_rsa_vrf_through_pki(self, rsa_pki):
        output = rsa_pki.vrf_scheme.prove(rsa_pki.vrf_private(1), b"round-0")
        assert isinstance(output, VRFOutput)
        assert rsa_pki.vrf_verify(1, b"round-0", output)
        assert not rsa_pki.vrf_verify(0, b"round-0", output)
