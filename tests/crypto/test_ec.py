"""secp256k1 arithmetic and the ECVRF / Schnorr constructions."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ec
from repro.crypto.signatures import SchnorrSignatureScheme
from repro.crypto.vrf import ECVRF, VRFOutput


class TestCurveArithmetic:
    def test_generator_on_curve(self):
        assert ec.is_on_curve(ec.GENERATOR)

    def test_infinity_is_identity(self):
        assert ec.point_add(ec.GENERATOR, ec.INFINITY) == ec.GENERATOR
        assert ec.point_add(ec.INFINITY, ec.GENERATOR) == ec.GENERATOR

    def test_inverse_sums_to_infinity(self):
        negated = ec.Point(ec.GENERATOR.x, ec.FIELD_P - ec.GENERATOR.y)
        assert ec.point_add(ec.GENERATOR, negated).is_infinity

    def test_doubling_matches_addition_chain(self):
        two_g = ec.point_add(ec.GENERATOR, ec.GENERATOR)
        three_g = ec.point_add(two_g, ec.GENERATOR)
        assert ec.scalar_mult(2, ec.GENERATOR) == two_g
        assert ec.scalar_mult(3, ec.GENERATOR) == three_g
        assert ec.is_on_curve(three_g)

    def test_order_annihilates_generator(self):
        assert ec.scalar_mult(ec.CURVE_ORDER, ec.GENERATOR).is_infinity

    @given(st.integers(1, 2**128), st.integers(1, 2**128))
    @settings(max_examples=10)
    def test_scalar_mult_is_homomorphic(self, a, b):
        left = ec.scalar_mult(a + b, ec.GENERATOR)
        right = ec.point_add(
            ec.scalar_mult(a, ec.GENERATOR), ec.scalar_mult(b, ec.GENERATOR)
        )
        assert left == right

    def test_known_vector_2g(self):
        # 2*G for secp256k1, a published test vector.
        two_g = ec.scalar_mult(2, ec.GENERATOR)
        assert two_g.x == int(
            "C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5", 16
        )
        assert two_g.y == int(
            "1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A", 16
        )

    def test_compressed_encoding_distinguishes_parity(self):
        point = ec.scalar_mult(5, ec.GENERATOR)
        mirrored = ec.Point(point.x, ec.FIELD_P - point.y)
        assert point.encode() != mirrored.encode()
        assert point.encode()[0] in (2, 3)


class TestHashToPoint:
    def test_lands_on_curve(self):
        for i in range(10):
            assert ec.is_on_curve(ec.hash_to_point(str(i).encode()))

    def test_deterministic(self):
        assert ec.hash_to_point(b"a") == ec.hash_to_point(b"a")

    def test_input_sensitive(self):
        assert ec.hash_to_point(b"a") != ec.hash_to_point(b"b")


class TestECVRF:
    @pytest.fixture(scope="class")
    def keys(self):
        return ECVRF().keygen(random.Random(61))

    def test_roundtrip(self, keys):
        scheme = ECVRF()
        sk, pk = keys
        output = scheme.prove(sk, b"alpha")
        assert scheme.verify(pk, b"alpha", output)

    def test_uniqueness_and_binding(self, keys):
        scheme = ECVRF()
        sk, pk = keys
        output = scheme.prove(sk, b"alpha")
        assert scheme.prove(sk, b"alpha") == output  # deterministic
        assert not scheme.verify(pk, b"beta", output)
        assert not scheme.verify(
            pk, b"alpha", VRFOutput(value=output.value ^ 1, proof=output.proof)
        )

    def test_gamma_must_be_on_curve(self, keys):
        scheme = ECVRF()
        sk, pk = keys
        output = scheme.prove(sk, b"alpha")
        gx, gy, c, s = output.proof
        forged = VRFOutput(value=output.value, proof=(gx, gy ^ 1, c, s))
        assert not scheme.verify(pk, b"alpha", forged)

    def test_malformed_proofs_rejected(self, keys):
        scheme = ECVRF()
        _, pk = keys
        assert not scheme.verify(pk, b"a", VRFOutput(value=0, proof=b"bytes"))
        assert not scheme.verify(pk, b"a", VRFOutput(value=0, proof=(1, 2, 3)))
        assert not scheme.verify(pk, b"a", VRFOutput(value=0, proof=(1, 2, 3, "s")))

    def test_wrong_public_key_rejected(self, keys):
        scheme = ECVRF()
        sk, _ = keys
        _, other_pk = scheme.keygen(random.Random(62))
        output = scheme.prove(sk, b"alpha")
        assert not scheme.verify(other_pk, b"alpha", output)


class TestSchnorr:
    @pytest.fixture(scope="class")
    def keys(self):
        return SchnorrSignatureScheme().keygen(random.Random(63))

    def test_roundtrip(self, keys):
        scheme = SchnorrSignatureScheme()
        sk, pk = keys
        signature = scheme.sign(sk, b"message")
        assert scheme.verify(pk, b"message", signature)

    def test_binding(self, keys):
        scheme = SchnorrSignatureScheme()
        sk, pk = keys
        signature = scheme.sign(sk, b"message")
        assert not scheme.verify(pk, b"other", signature)
        _, other_pk = scheme.keygen(random.Random(64))
        assert not scheme.verify(other_pk, b"message", signature)

    def test_s_tampering_rejected(self, keys):
        scheme = SchnorrSignatureScheme()
        sk, pk = keys
        r_x, r_y, s = scheme.sign(sk, b"message")
        assert not scheme.verify(pk, b"message", (r_x, r_y, s + 1))

    def test_malformed_rejected(self, keys):
        scheme = SchnorrSignatureScheme()
        _, pk = keys
        assert not scheme.verify(pk, b"m", None)
        assert not scheme.verify(pk, b"m", (1, 2))


class TestECPKIEndToEnd:
    def test_shared_coin_over_ec(self):
        """The full protocol stack over the genuine elliptic-curve VRF."""
        from repro.core.params import ProtocolParams
        from repro.core.shared_coin import shared_coin
        from repro.crypto.pki import PKI
        from repro.sim.runner import run_protocol

        n = 5
        pki = PKI.create(n, backend="ec", rng=random.Random(70))
        result = run_protocol(
            n, 0, lambda ctx: shared_coin(ctx, 0),
            pki=pki, params=ProtocolParams(n=n, f=0), seed=70,
        )
        assert result.live
        assert len(result.returned_values) == 1
        assert result.returned_values <= {0, 1}
