"""Property-based tests across the crypto substrate (fast backends)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import derive_seed, encode, hash_to_int
from repro.crypto.numtheory import is_probable_prime, modinv
from repro.crypto.rsa import full_domain_hash, generate_keypair, rsa_sign, rsa_verify
from repro.crypto.shamir import FIELD_PRIME, split_secret, reconstruct_secret
from repro.crypto.vrf import SimulatedVRF

# One small RSA key for the whole module (keygen dominates otherwise).
_KEY = generate_keypair(bits=256, rng=random.Random(404))
_VRF = SimulatedVRF()
_VRF_SK, _VRF_PK = _VRF.keygen(random.Random(405))


class TestRSAProperties:
    @given(st.binary(max_size=64))
    @settings(max_examples=25)
    def test_sign_verify_roundtrip(self, message):
        signature = rsa_sign(_KEY, message)
        assert rsa_verify(_KEY.public_key(), message, signature)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=25)
    def test_signature_does_not_transfer(self, m1, m2):
        if m1 == m2:
            return
        signature = rsa_sign(_KEY, m1)
        assert not rsa_verify(_KEY.public_key(), m2, signature)

    @given(st.binary(max_size=64))
    @settings(max_examples=25)
    def test_fdh_stays_in_range(self, message):
        assert 0 <= full_domain_hash(message, _KEY.n) < _KEY.n


class TestSimulatedVRFProperties:
    @given(st.binary(max_size=64))
    @settings(max_examples=50)
    def test_prove_verify_roundtrip(self, alpha):
        output = _VRF.prove(_VRF_SK, alpha)
        assert _VRF.verify(_VRF_PK, alpha, output)

    @given(st.binary(max_size=32), st.binary(max_size=32))
    @settings(max_examples=50)
    def test_distinct_inputs_distinct_values(self, a, b):
        if a != b:
            assert _VRF.prove(_VRF_SK, a).value != _VRF.prove(_VRF_SK, b).value


class TestNumberTheoryProperties:
    @given(st.integers(3, 10**6))
    @settings(max_examples=50)
    def test_prime_factor_structure(self, n):
        # If Miller-Rabin says prime, trial division must find no factor.
        if is_probable_prime(n):
            assert all(n % k for k in range(2, min(int(n**0.5) + 1, 2000)))

    @given(st.integers(1, FIELD_PRIME - 1))
    @settings(max_examples=40)
    def test_modinv_in_shamir_field(self, a):
        assert a * modinv(a, FIELD_PRIME) % FIELD_PRIME == 1


class TestShamirHomomorphism:
    @given(
        s1=st.integers(0, FIELD_PRIME - 1),
        s2=st.integers(0, FIELD_PRIME - 1),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=20)
    def test_share_addition_is_secret_addition(self, s1, s2, seed):
        """Shamir sharing is linear: adding shares pointwise shares the
        sum -- the property threshold crypto constructions exploit."""
        from repro.crypto.shamir import Share

        rng = random.Random(seed)
        shares1 = split_secret(s1, 3, 5, rng)
        shares2 = split_secret(s2, 3, 5, rng)
        summed = [
            Share(x=a.x, y=(a.y + b.y) % FIELD_PRIME)
            for a, b in zip(shares1, shares2)
        ]
        assert reconstruct_secret(summed[:3]) == (s1 + s2) % FIELD_PRIME


class TestHashingProperties:
    @given(st.lists(st.integers(-(10**9), 10**9), min_size=1, max_size=6))
    @settings(max_examples=50)
    def test_hash_to_int_uniform_prefix_stability(self, parts):
        wide = hash_to_int("p", *parts, bits=256)
        assert 0 <= wide < 2**256

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=50)
    def test_derive_seed_collision_free_on_distinct_labels(self, a, b):
        if a != b:
            assert derive_seed(a) != derive_seed(b)

    @given(st.binary(max_size=40))
    @settings(max_examples=50)
    def test_encode_embeds_bytes_losslessly(self, blob):
        assert blob in encode(blob)
